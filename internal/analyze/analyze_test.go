package analyze_test

import (
	"bytes"
	"strings"
	"testing"

	"golisa/internal/analyze"
	"golisa/internal/core"
	"golisa/internal/profile"
	"golisa/internal/replay"
	"golisa/internal/sim"
	"golisa/internal/trace"
)

// hazard16 is a 3-stage machine built to emit every hazard class the
// attribution engine classifies:
//
//   - LD raises mem_wait, and the mem_wait-guarded stalls are data hazards
//     on that resource;
//   - BR raises redirect, and the redirect-guarded whole-pipe flush is a
//     control hazard (with a fetch bubble in the branch shadow);
//   - HOLD stalls fetch unconditionally from its ACTIVATION (structural)
//     and raises busy, so the following fetch bubbles trail its cause;
//   - ESC does the same from its BEHAVIOR (explicit).
//
// busy gates fetch without emitting events of its own: the bubble steps it
// inserts carry no hazard event, exercising the analyzer's sticky
// last-cause attribution (bubbles trail the hazard that made them).
const hazard16 = `
RESOURCE {
  PROGRAM_COUNTER int pc LATCH;
  CONTROL_REGISTER bit[16] ir;
  REGISTER int R[8];
  REGISTER bit halt;
  REGISTER int mem_wait;
  REGISTER int busy;
  REGISTER bit redirect;
  PROGRAM_MEMORY bit[16] pmem[64];
  DATA_MEMORY int dmem[64];
  PIPELINE pipe = { FE; EX; WB };
}

OPERATION main {
  ACTIVATION {
    if (!halt && mem_wait == 0 && busy == 0 && !redirect) { fetch },
    if (mem_wait > 0) { pipe.EX.stall(), pipe.FE.stall(), tick },
    if (busy > 0) { tickb },
    if (redirect) { pipe.flush(), retarget },
    pipe.shift()
  }
}

OPERATION tick { BEHAVIOR { mem_wait = mem_wait - 1; } }
OPERATION tickb { BEHAVIOR { busy = busy - 1; } }
OPERATION retarget { BEHAVIOR { redirect = 0; } }

OPERATION fetch IN pipe.FE {
  BEHAVIOR {
    ir = pmem[pc];
    pc = pc + 1;
    decode();
  }
}

OPERATION decode {
  DECLARE { GROUP Insn = { nop; addi; ld; br; hold; esc; halt_op }; }
  CODING { ir == Insn }
  ACTIVATION { Insn }
}

OPERATION nop {
  CODING { 0b0000 0bx[12] }
  SYNTAX { "NOP" }
}

OPERATION addi IN pipe.EX {
  DECLARE { LABEL rd, imm; }
  CODING { 0b0001 rd:0bx[3] imm:0bx[9] }
  SYNTAX { "ADDI" rd:#u "," imm:#u }
  BEHAVIOR { R[rd] = R[rd] + imm; }
}

OPERATION ld IN pipe.EX {
  DECLARE { LABEL rd, addr; }
  CODING { 0b0010 rd:0bx[3] addr:0bx[9] }
  SYNTAX { "LD" rd:#u "," addr:#u }
  BEHAVIOR { R[rd] = dmem[addr]; mem_wait = 2; }
}

OPERATION br IN pipe.EX {
  DECLARE { LABEL target; }
  CODING { 0b0011 target:0bx[12] }
  SYNTAX { "BR" target:#u }
  BEHAVIOR { pc = target; redirect = 1; }
}

OPERATION hold IN pipe.EX {
  DECLARE { LABEL rd, imm; }
  CODING { 0b0100 rd:0bx[3] imm:0bx[9] }
  SYNTAX { "HOLD" rd:#u "," imm:#u }
  BEHAVIOR { R[rd] = R[rd] + imm; busy = 2; }
  ACTIVATION { pipe.FE.stall() }
}

OPERATION esc IN pipe.EX {
  CODING { 0b0101 0bx[12] }
  SYNTAX { "ESC" }
  BEHAVIOR { pipe.FE.stall(); busy = 2; }
}

OPERATION halt_op IN pipe.EX {
  CODING { 0b1111 0bx[12] }
  SYNTAX { "HALT" }
  BEHAVIOR { halt = 1; }
}
`

// hazardProg trips every hazard class, with NOP spacing so each hazard's
// bubbles drain before the next hazard op reaches execute.
const hazardProg = `
    ADDI 1, 5
    LD   2, 3
    NOP
    NOP
    HOLD 3, 2
    NOP
    NOP
    ESC
    NOP
    NOP
    BR   after
    NOP            ; wrong path, flushed
after:
    ADDI 4, 2
    HALT
`

func runHazard(t *testing.T, mode sim.Mode, extra ...trace.Observer) (*sim.Simulator, uint64) {
	t.Helper()
	mach, err := core.LoadMachine("hazard16", hazard16)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := mach.AssembleAndLoad(hazardProg, mode)
	if err != nil {
		t.Fatal(err)
	}
	if len(extra) > 0 {
		s.SetObserver(trace.Fanout(extra...))
	}
	n, err := s.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Halted() {
		t.Fatal("program did not halt")
	}
	return s, n
}

// TestAttributionInvariant pins the cycle-reconciliation contract: the
// profiler's issue/penalty/idle split and the analyzer's per-cause CPI
// breakdown both sum exactly to the simulated control steps, every hazard
// class shows up, and interpreted and compiled engines attribute
// identically.
func TestAttributionInvariant(t *testing.T) {
	var reports []string
	for _, mode := range []sim.Mode{sim.Interpretive, sim.Compiled, sim.CompiledPrebound} {
		t.Run(mode.String(), func(t *testing.T) {
			a := analyze.New()
			p := profile.New(profile.Options{Source: "hazard.s", Model: "hazard16"})
			_, steps := runHazard(t, mode, a, p)

			// Profiler invariant: every control step is charged somewhere.
			var prof uint64
			for _, site := range p.Sites() {
				prof += site.Cycles()
			}
			prof += p.IdleCycles()
			if prof != steps {
				t.Errorf("profiler: Σissue+Σpenalty+idle = %d, want %d steps", prof, steps)
			}

			// Analyzer invariant: the CPI buckets sum to the same total.
			rep := a.Report()
			var sum uint64
			for _, b := range rep.Breakdown {
				sum += b.Cycles
			}
			if sum != steps || rep.Steps != steps {
				t.Errorf("analyzer: buckets sum to %d (Steps=%d), want %d", sum, rep.Steps, steps)
			}
			if p.Steps() != rep.Steps {
				t.Errorf("profiler counted %d steps, analyzer %d", p.Steps(), rep.Steps)
			}

			// Every hazard class must be attributed.
			bucket := map[string]uint64{}
			for _, b := range rep.Breakdown {
				bucket[b.Name] = b.Cycles
			}
			for _, cause := range []string{"data", "control", "structural", "explicit"} {
				if bucket[cause] == 0 {
					t.Errorf("no %s penalty cycles attributed (breakdown %v)", cause, rep.Breakdown)
				}
			}
			if bucket["issue"] == 0 {
				t.Error("no issue cycles")
			}

			// The data hazards must name their gating resource.
			foundWait := false
			for _, rc := range rep.Resources {
				if rc.Resource == "mem_wait" && rc.Events > 0 {
					foundWait = true
				}
			}
			if !foundWait {
				t.Errorf("data stalls not attributed to mem_wait (resources %v)", rep.Resources)
			}
			// Flushes must be classified as control hazards.
			for _, e := range rep.Events {
				if e.Cause == "control" && e.Flushes == 0 {
					t.Errorf("control hazards recorded no flush events (%v)", rep.Events)
				}
			}
			// The what-if table covers every cause that cost cycles.
			for _, cause := range []string{"data", "control", "structural", "explicit"} {
				found := false
				for _, w := range rep.WhatIf {
					if w.Cause == cause && w.EstSteps == steps-w.Penalty {
						found = true
					}
				}
				if !found {
					t.Errorf("what-if entry for %s missing or inconsistent (%v)", cause, rep.WhatIf)
				}
			}

			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			reports = append(reports, buf.String())
		})
	}
	// All engines must agree byte for byte: attribution reads only
	// committed architectural state, which is mode-invariant.
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Errorf("mode %d report differs from mode 0:\n%s\nvs\n%s", i, reports[i], reports[0])
		}
	}
}

// TestAttributionReplayIdentical records a hazard-heavy run and replays
// it with a second analyzer riding the verified re-execution: the replayed
// report must match the live one byte for byte.
func TestAttributionReplayIdentical(t *testing.T) {
	mach, err := core.LoadMachine("hazard16", hazard16)
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := mach.AssembleAndLoad(hazardProg, sim.Compiled)
	if err != nil {
		t.Fatal(err)
	}
	live := analyze.New()
	var rec bytes.Buffer
	r := replay.NewRecorder(s, hazard16, &rec, replay.Options{Every: 8})
	s.SetObserver(trace.Fanout(live, r))
	if _, err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	var liveJSON bytes.Buffer
	if err := live.Report().WriteJSON(&liveJSON); err != nil {
		t.Fatal(err)
	}

	parsed, err := replay.Parse(rec.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	rp, err := replay.NewReplayer(parsed)
	if err != nil {
		t.Fatal(err)
	}
	replayed := analyze.New()
	rp.SetExtra(replayed)
	if _, err := rp.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	var replayJSON bytes.Buffer
	if err := replayed.Report().WriteJSON(&replayJSON); err != nil {
		t.Fatal(err)
	}
	if liveJSON.String() != replayJSON.String() {
		t.Errorf("replayed attribution differs from live run:\nlive:\n%s\nreplayed:\n%s",
			liveJSON.String(), replayJSON.String())
	}
	if !strings.Contains(liveJSON.String(), `"mem_wait"`) {
		t.Error("live report never attributed the mem_wait interlock")
	}
}

// TestReportWriters smoke-tests the text and HTML exporters on a real run.
func TestReportWriters(t *testing.T) {
	a := analyze.New()
	_, steps := runHazard(t, sim.Interpretive, a)
	rep := a.Report()

	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cycle breakdown", "mem_wait", "what-if", "hazard attribution: hazard16"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}

	var html bytes.Buffer
	if err := rep.WriteHTML(&html); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "mem_wait", "what-if", "spark"} {
		if !strings.Contains(html.String(), want) {
			t.Errorf("html report missing %q", want)
		}
	}
	if steps == 0 {
		t.Fatal("no steps simulated")
	}
}

// TestAnalyzerReattachResets pins the OnAttach contract: re-attaching the
// same analyzer restarts attribution from zero (the replayer re-announces
// the topology on every seek).
func TestAnalyzerReattachResets(t *testing.T) {
	a := analyze.New()
	_, first := runHazard(t, sim.Interpretive, a)
	if a.Steps() != first {
		t.Fatalf("first run: %d steps analyzed, want %d", a.Steps(), first)
	}
	_, second := runHazard(t, sim.Interpretive, a)
	if a.Steps() != second {
		t.Errorf("after re-attach: %d steps analyzed, want %d (state must reset)", a.Steps(), second)
	}
}
