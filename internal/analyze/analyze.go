// Package analyze implements the hazard attribution engine of the golisa
// simulators: a trace.Observer that consumes the cause-annotated stall and
// flush events emitted through trace.EmitStall/EmitFlush and explains
// where the simulated cycles went — per-cause, per-resource and
// per-operation-pair stall matrices, per-stage occupancy timelines, a CPI
// breakdown, and a what-if estimate of the CPI gained by eliminating each
// hazard class.
//
// Cycle attribution mirrors internal/profile exactly: a control step with
// at least one instruction dispatch is an issue cycle; a dispatch-free
// step is a penalty cycle, charged to the highest-ranked hazard cause
// observed in that step, falling back to the most recent step's cause (a
// branch flush explains the bubble steps that follow it); dispatch-free
// steps before the first dispatch are idle. The resulting buckets satisfy
//
//	issue + Σ penalty(cause) + other + idle == steps
//
// by construction — the same invariant the profiler's issue/penalty split
// obeys — so the two reports reconcile cycle for cycle.
package analyze

import (
	"golisa/internal/trace"
)

// timelineBuckets is the fixed resolution of the per-pipe occupancy
// timeline; longer runs coarsen (bucket width doubles) instead of growing.
const timelineBuckets = 64

// stageStats accumulates per-stage hazard counters.
type stageStats struct {
	pipe, stage string
	occupied    uint64
	flushes     uint64
	stallCycles [trace.NumCauses]uint64 // [CauseNone] = unattributed
}

func (st *stageStats) stallTotal() uint64 {
	var n uint64
	for _, v := range st.stallCycles {
		n += v
	}
	return n
}

// timeline is one pipe's occupancy/stall history at fixed resolution:
// bucket i covers steps [i*width, (i+1)*width).
type timeline struct {
	width  uint64
	stages int
	occ    []uint64 // occupied stage-cycles per bucket
	stall  []uint64 // stall cycles per bucket
}

func newTimeline(stages int) *timeline {
	return &timeline{width: 1, stages: stages}
}

// bucket returns the bucket index for a step, coarsening the timeline
// (merging bucket pairs, doubling the width) whenever the step falls
// beyond the fixed bucket count.
func (t *timeline) bucket(step uint64) int {
	for step/t.width >= timelineBuckets {
		half := func(b []uint64) []uint64 {
			n := (len(b) + 1) / 2
			for i := 0; i < n; i++ {
				v := b[2*i]
				if 2*i+1 < len(b) {
					v += b[2*i+1]
				}
				b[i] = v
			}
			return b[:n]
		}
		t.occ = half(t.occ)
		t.stall = half(t.stall)
		t.width *= 2
	}
	i := int(step / t.width)
	for len(t.occ) <= i {
		t.occ = append(t.occ, 0)
	}
	for len(t.stall) <= i {
		t.stall = append(t.stall, 0)
	}
	return i
}

func (t *timeline) addOcc(step, n uint64)   { t.occ[t.bucket(step)] += n }
func (t *timeline) addStall(step, n uint64) { t.stall[t.bucket(step)] += n }

// pair keys the stall matrix by (requesting op, victim op): the victim is
// the operation most recently executed in the stalled stage.
type pair struct {
	Source, Victim string
}

// Analyzer is the hazard-attribution observer. Attach it to a simulator
// (alone or in a trace.Fanout); OnAttach resets all state, so one Analyzer
// can be re-attached for repeated runs or replay passes.
type Analyzer struct {
	trace.Nop

	model  string
	pipes  []trace.PipeInfo
	stages [][]*stageStats
	lines  []*timeline

	steps   uint64
	issue   uint64
	idle    uint64
	penalty [trace.NumCauses]uint64 // [CauseNone] = penalty with no known cause

	dispatches     uint64
	everDispatched bool

	cur       uint64      // current step
	decoded   bool        // a dispatch happened this step
	stepCause trace.Cause // highest-ranked cause seen this step
	lastCause trace.Cause // sticky: cause of the most recent hazard step

	stallEvents [trace.NumCauses]uint64
	flushEvents [trace.NumCauses]uint64
	byResource  map[string]uint64
	bySource    map[string]uint64
	byVictim    map[pair]uint64
	lastExec    map[[2]int]string
}

// New creates an empty analyzer; it becomes usable once attached.
func New() *Analyzer { return &Analyzer{} }

// OnAttach implements trace.Observer. It RESETS all accumulated state:
// the replayer re-announces the topology on every seek, and the analyzer
// must attribute a re-executed run from scratch to match the live one.
func (a *Analyzer) OnAttach(model string, pipes []trace.PipeInfo) {
	a.model = model
	a.pipes = append([]trace.PipeInfo(nil), pipes...)
	a.stages = a.stages[:0]
	a.lines = a.lines[:0]
	for _, pi := range pipes {
		row := make([]*stageStats, len(pi.Stages))
		for i, st := range pi.Stages {
			row[i] = &stageStats{pipe: pi.Name, stage: st}
		}
		a.stages = append(a.stages, row)
		a.lines = append(a.lines, newTimeline(len(pi.Stages)))
	}
	a.steps, a.issue, a.idle = 0, 0, 0
	a.penalty = [trace.NumCauses]uint64{}
	a.stallEvents = [trace.NumCauses]uint64{}
	a.flushEvents = [trace.NumCauses]uint64{}
	a.dispatches = 0
	a.everDispatched = false
	a.cur, a.decoded = 0, false
	a.stepCause, a.lastCause = trace.CauseNone, trace.CauseNone
	a.byResource = map[string]uint64{}
	a.bySource = map[string]uint64{}
	a.byVictim = map[pair]uint64{}
	a.lastExec = map[[2]int]string{}
}

// OnStepBegin implements trace.Observer.
func (a *Analyzer) OnStepBegin(step uint64) {
	a.cur = step
	a.decoded = false
	a.stepCause = trace.CauseNone
}

// OnStepEnd implements trace.Observer: the step's cycle is attributed to
// exactly one bucket (see the package comment for the model).
func (a *Analyzer) OnStepEnd(uint64) {
	a.steps++
	if a.stepCause != trace.CauseNone {
		a.lastCause = a.stepCause
	}
	switch {
	case a.decoded:
		a.issue++
	case !a.everDispatched:
		a.idle++
	default:
		c := a.stepCause
		if c == trace.CauseNone {
			c = a.lastCause // bubbles trail their hazard (branch shadows)
		}
		a.penalty[c]++
	}
}

// OnDecode implements trace.Observer: any decode makes the step an issue
// cycle (parallel decodes — a VLIW execute packet — share it).
func (a *Analyzer) OnDecode(string, uint64, bool) {
	a.decoded = true
	a.everDispatched = true
	a.dispatches++
}

// OnOccupancy implements trace.Observer.
func (a *Analyzer) OnOccupancy(pipe int, occupied []bool) {
	if pipe < 0 || pipe >= len(a.stages) {
		return
	}
	row := a.stages[pipe]
	n := uint64(0)
	for i, occ := range occupied {
		if occ && i < len(row) {
			row[i].occupied++
			n++
		}
	}
	a.lines[pipe].addOcc(a.cur, n)
}

// OnExec implements trace.Observer: the last operation executed in each
// (pipe, stage) is the presumed victim of a later stall there.
func (a *Analyzer) OnExec(op string, pipe, stage int, packet uint64) {
	if pipe >= 0 && stage >= 0 {
		a.lastExec[[2]int{pipe, stage}] = op
	}
}

// rankCause keeps the highest-ranked cause seen this step.
func (a *Analyzer) rankCause(c trace.Cause) {
	if c.Rank() > a.stepCause.Rank() {
		a.stepCause = c
	}
}

// OnStall implements trace.Observer (legacy uncaused form).
func (a *Analyzer) OnStall(pipe, stage int) {
	a.OnStallInfo(trace.StallInfo{Pipe: pipe, Stage: stage})
}

// OnFlush implements trace.Observer (legacy uncaused form).
func (a *Analyzer) OnFlush(pipe, stage int) {
	a.OnFlushInfo(trace.StallInfo{Pipe: pipe, Stage: stage})
}

// OnStallInfo implements trace.HazardObserver.
func (a *Analyzer) OnStallInfo(info trace.StallInfo) {
	c := info.Cause
	if c >= trace.NumCauses {
		c = trace.CauseNone
	}
	a.rankCause(c)
	a.stallEvents[c]++
	if info.Resource != "" {
		a.byResource[info.Resource]++
	}
	if info.SourceOp != "" {
		a.bySource[info.SourceOp]++
	}
	if info.Pipe < 0 || info.Pipe >= len(a.stages) {
		return
	}
	row := a.stages[info.Pipe]
	if info.Stage < 0 {
		for _, st := range row {
			st.stallCycles[c]++
		}
		a.lines[info.Pipe].addStall(a.cur, uint64(len(row)))
	} else if info.Stage < len(row) {
		row[info.Stage].stallCycles[c]++
		a.lines[info.Pipe].addStall(a.cur, 1)
	}
	if info.SourceOp != "" && info.Stage >= 0 {
		if victim := a.lastExec[[2]int{info.Pipe, info.Stage}]; victim != "" {
			a.byVictim[pair{info.SourceOp, victim}]++
		}
	}
}

// OnFlushInfo implements trace.HazardObserver.
func (a *Analyzer) OnFlushInfo(info trace.StallInfo) {
	c := info.Cause
	if c >= trace.NumCauses {
		c = trace.CauseNone
	}
	a.rankCause(c)
	a.flushEvents[c]++
	if info.Resource != "" {
		a.byResource[info.Resource]++
	}
	if info.SourceOp != "" {
		a.bySource[info.SourceOp]++
	}
	if info.Pipe < 0 || info.Pipe >= len(a.stages) {
		return
	}
	row := a.stages[info.Pipe]
	if info.Stage < 0 {
		for _, st := range row {
			st.flushes++
		}
	} else if info.Stage < len(row) {
		row[info.Stage].flushes++
	}
}

// Steps returns the number of analyzed control steps.
func (a *Analyzer) Steps() uint64 { return a.steps }

// IssueCycles returns the steps that dispatched at least one instruction.
func (a *Analyzer) IssueCycles() uint64 { return a.issue }

// PenaltyCycles returns the penalty cycles attributed to cause c
// (trace.CauseNone returns the unattributed remainder).
func (a *Analyzer) PenaltyCycles(c trace.Cause) uint64 {
	if c >= trace.NumCauses {
		return 0
	}
	return a.penalty[c]
}

// IdleCycles returns the dispatch-free steps before the first dispatch.
func (a *Analyzer) IdleCycles() uint64 { return a.idle }
