package otrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Trace is an in-memory span tree for one logical request. It is safe
// for concurrent use: fleet workers start and end job spans from their
// own goroutines.
type Trace struct {
	mu     sync.Mutex
	id     TraceID
	epoch  time.Time
	remote SpanID // parent of the root span when joined from a carrier
	spans  []*Span
	root   *Span
}

// Span is one timed unit of work inside a trace. Start/End are monotonic
// offsets from the trace epoch, so subtracting any two spans' bounds
// yields a real duration regardless of wall-clock adjustments.
type Span struct {
	tr     *Trace
	id     SpanID
	parent SpanID
	name   string
	start  time.Duration
	end    time.Duration
	ended  bool
	attrs  map[string]any
}

// New creates a trace with a fresh TraceID and a root span of the given
// name, already started.
func New(name string) *Trace {
	return newTrace(NewTraceID(), SpanID{}, name)
}

// Join creates a trace that continues a remote context: it shares the
// context's TraceID and parents its root span under the context's span,
// so a collector merging both sides sees one tree.
func Join(ctx Context, name string) *Trace {
	if !ctx.Valid() {
		return New(name)
	}
	return newTrace(ctx.TraceID, ctx.SpanID, name)
}

func newTrace(id TraceID, remote SpanID, name string) *Trace {
	t := &Trace{id: id, epoch: time.Now(), remote: remote}
	t.root = &Span{tr: t, id: NewSpanID(), parent: remote, name: name}
	t.spans = append(t.spans, t.root)
	return t
}

// ID returns the trace's TraceID.
func (t *Trace) ID() TraceID { return t.id }

// Root returns the trace's root span.
func (t *Trace) Root() *Span { return t.root }

// Context returns the root span's context — what callers hand to child
// work (or render as a traceparent header) to parent under this trace.
func (t *Trace) Context() Context { return t.root.Context() }

// Start opens a child span under parent (the root span when parent is
// nil), started now.
func (t *Trace) Start(parent *Span, name string) *Span {
	if parent == nil {
		parent = t.root
	}
	sp := &Span{tr: t, id: NewSpanID(), parent: parent.id, name: name}
	t.mu.Lock()
	sp.start = time.Since(t.epoch)
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// Len returns the number of spans recorded so far.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Context returns the span's (TraceID, SpanID) pair.
func (sp *Span) Context() Context { return Context{TraceID: sp.tr.id, SpanID: sp.id} }

// ID returns the span's SpanID.
func (sp *Span) ID() SpanID { return sp.id }

// End closes the span; a second End is a no-op so defer-and-explicit
// call sites stay correct.
func (sp *Span) End() {
	sp.tr.mu.Lock()
	if !sp.ended {
		sp.ended = true
		sp.end = time.Since(sp.tr.epoch)
	}
	sp.tr.mu.Unlock()
}

// SetAttr attaches one key/value attribute to the span.
func (sp *Span) SetAttr(key string, value any) {
	sp.tr.mu.Lock()
	if sp.attrs == nil {
		sp.attrs = map[string]any{}
	}
	sp.attrs[key] = value
	sp.tr.mu.Unlock()
}

// --- export ---------------------------------------------------------------

// SpanJSON is one span of an exported trace document.
type SpanJSON struct {
	SpanID  string         `json:"span_id"`
	Parent  string         `json:"parent_span_id,omitempty"`
	Name    string         `json:"name"`
	StartUs float64        `json:"start_us"`
	DurUs   float64        `json:"dur_us,omitempty"`
	Ended   bool           `json:"ended"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Doc is the exported form of a trace: the JSON schema of a bundle's
// spans.json section.
type Doc struct {
	TraceID     string     `json:"trace_id"`
	Traceparent string     `json:"traceparent"`
	Start       string     `json:"start"`
	Spans       []SpanJSON `json:"spans"`
}

// Export snapshots the trace as a document. Unfinished spans are
// included with Ended false and their duration measured up to now, so a
// mid-run export (the live server's /bundle) still shows them.
func (t *Trace) Export() *Doc {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Since(t.epoch)
	d := &Doc{
		TraceID:     t.id.String(),
		Traceparent: t.root.Context().Traceparent(),
		Start:       t.epoch.UTC().Format(time.RFC3339Nano),
	}
	for _, sp := range t.spans {
		j := SpanJSON{
			SpanID:  sp.id.String(),
			Name:    sp.name,
			StartUs: float64(sp.start.Nanoseconds()) / 1e3,
			Ended:   sp.ended,
		}
		if !sp.parent.IsZero() {
			j.Parent = sp.parent.String()
		}
		end := sp.end
		if !sp.ended {
			end = now
		}
		j.DurUs = float64((end - sp.start).Nanoseconds()) / 1e3
		if len(sp.attrs) > 0 {
			attrs := make(map[string]any, len(sp.attrs))
			for k, v := range sp.attrs {
				attrs[k] = v
			}
			j.Attrs = attrs
		}
		d.Spans = append(d.Spans, j)
	}
	return d
}

// WriteJSON writes the trace document as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error { return t.Export().WriteJSON(w) }

// WriteJSON writes the document as indented JSON.
func (d *Doc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ReadDoc parses a trace document (a bundle's spans.json section).
func ReadDoc(r io.Reader) (*Doc, error) {
	var d Doc
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("otrace: parse trace document: %w", err)
	}
	return &d, nil
}

// WriteText renders the document as an indented span tree with
// durations, for terminal inspection (lisa-bundle inspect).
func (d *Doc) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "trace %s (started %s)\n", d.TraceID, d.Start); err != nil {
		return err
	}
	children := map[string][]SpanJSON{}
	ids := map[string]bool{}
	for _, sp := range d.Spans {
		ids[sp.SpanID] = true
	}
	var roots []SpanJSON
	for _, sp := range d.Spans {
		// Spans whose parent is outside this document (a remote context)
		// are roots of the local tree.
		if sp.Parent != "" && ids[sp.Parent] {
			children[sp.Parent] = append(children[sp.Parent], sp)
		} else {
			roots = append(roots, sp)
		}
	}
	var walk func(sp SpanJSON, depth int) error
	walk = func(sp SpanJSON, depth int) error {
		state := ""
		if !sp.Ended {
			state = "  (unfinished)"
		}
		attrs := ""
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				attrs += fmt.Sprintf(" %s=%v", k, sp.Attrs[k])
			}
		}
		_, err := fmt.Fprintf(w, "%*s%s  %s  [span %s]%s%s\n",
			2*depth, "", sp.Name,
			time.Duration(sp.DurUs*1e3).Round(time.Microsecond), sp.SpanID, attrs, state)
		if err != nil {
			return err
		}
		for _, c := range children[sp.SpanID] {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, sp := range roots {
		if err := walk(sp, 1); err != nil {
			return err
		}
	}
	return nil
}
