package otrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNewIDsAreDistinctAndNonZero(t *testing.T) {
	seenT := map[TraceID]bool{}
	seenS := map[SpanID]bool{}
	for i := 0; i < 100; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if tid.IsZero() || sid.IsZero() {
			t.Fatalf("generated a zero id: %v %v", tid, sid)
		}
		if seenT[tid] || seenS[sid] {
			t.Fatalf("duplicate id after %d draws", i)
		}
		seenT[tid], seenS[sid] = true, true
	}
	if got := NewTraceID().String(); len(got) != 32 {
		t.Errorf("TraceID hex length = %d, want 32", len(got))
	}
	if got := NewSpanID().String(); len(got) != 16 {
		t.Errorf("SpanID hex length = %d, want 16", len(got))
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	ctx := Context{TraceID: NewTraceID(), SpanID: NewSpanID()}
	tp := ctx.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q is not a version-00 sampled header", tp)
	}
	got, err := Parse(tp)
	if err != nil {
		t.Fatalf("Parse(%q): %v", tp, err)
	}
	if got != ctx {
		t.Errorf("round trip changed the context: %+v != %+v", got, ctx)
	}
}

func TestParseRejectsMalformedHeaders(t *testing.T) {
	bad := []string{
		"",
		"00-abc",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // reserved version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"00-ZZf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // non-hex
		"00+4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad delimiter
	}
	for _, tp := range bad {
		if _, err := Parse(tp); err == nil {
			t.Errorf("Parse(%q) accepted a malformed header", tp)
		}
	}
	// Unknown (non-ff) versions still parse their leading fields.
	if _, err := Parse("42-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future"); err != nil {
		t.Errorf("future-version traceparent rejected: %v", err)
	}
}

func TestJoinSharesTraceIDAndParents(t *testing.T) {
	parent := New("client")
	ctx := parent.Context()
	child := Join(ctx, "server")
	if child.ID() != parent.ID() {
		t.Fatalf("Join changed the trace id: %s != %s", child.ID(), parent.ID())
	}
	doc := child.Export()
	if doc.Spans[0].Parent != ctx.SpanID.String() {
		t.Errorf("joined root parent = %q, want remote span %s", doc.Spans[0].Parent, ctx.SpanID)
	}
	// An invalid context degrades to a fresh trace instead of corrupting.
	fresh := Join(Context{}, "orphan")
	if fresh.ID().IsZero() || fresh.ID() == parent.ID() {
		t.Errorf("Join with invalid context did not mint a fresh trace")
	}
}

func TestSpanTreeExport(t *testing.T) {
	tr := New("batch")
	a := tr.Start(nil, "assemble")
	a.SetAttr("sources", 3)
	a.End()
	job := tr.Start(nil, "job:fir")
	run := tr.Start(job, "run")
	run.End()
	job.End()
	open := tr.Start(nil, "never-ends")
	_ = open

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc, err := ReadDoc(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if doc.TraceID != tr.ID().String() {
		t.Errorf("doc trace id %q != %q", doc.TraceID, tr.ID())
	}
	if len(doc.Spans) != 5 {
		t.Fatalf("exported %d spans, want 5", len(doc.Spans))
	}
	byName := map[string]SpanJSON{}
	for _, sp := range doc.Spans {
		byName[sp.Name] = sp
	}
	if byName["run"].Parent != byName["job:fir"].SpanID {
		t.Errorf("run span parent = %q, want job span %q", byName["run"].Parent, byName["job:fir"].SpanID)
	}
	if byName["assemble"].Parent != byName["batch"].SpanID {
		t.Errorf("assemble span parent = %q, want root %q", byName["assemble"].Parent, byName["batch"].SpanID)
	}
	if v, ok := byName["assemble"].Attrs["sources"]; !ok || v != float64(3) {
		t.Errorf("assemble attrs = %v, want sources=3", byName["assemble"].Attrs)
	}
	if byName["never-ends"].Ended {
		t.Errorf("unfinished span exported as ended")
	}
	if !byName["run"].Ended {
		t.Errorf("ended span exported as unfinished")
	}

	var txt bytes.Buffer
	if err := doc.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace " + doc.TraceID, "batch", "  job:fir", "    run", "(unfinished)"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text tree missing %q:\n%s", want, txt.String())
		}
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("batch")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.Start(nil, "job")
				sp.SetAttr("worker", w)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	tr.Root().End()
	if got := tr.Len(); got != 1+8*50 {
		t.Fatalf("recorded %d spans, want %d", got, 1+8*50)
	}
	doc := tr.Export()
	for _, sp := range doc.Spans {
		if sp.Name == "job" && sp.Parent != tr.Root().ID().String() {
			t.Fatalf("job span parented under %q, want root", sp.Parent)
		}
	}
	// The document must be valid JSON end to end.
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("exported document is not valid JSON")
	}
}
