// Package otrace implements the W3C-style trace context shared by every
// golisa entry point: a 128-bit TraceID naming one logical request (a
// single lisa-sim run, a fleet batch, one debug-server HTTP request) and
// a 64-bit SpanID per unit of work inside it. The IDs propagate through
// the `traceparent` header on the wire and the LISA_TRACEPARENT
// environment variable across processes, and every observability sink —
// the NDJSON job stream, .lperf run records, Prometheus info metrics,
// the merged Chrome timeline, the HTTP access log, diagnostic bundles —
// carries them, so one incident can be followed from the HTTP request
// that triggered it down to the simulation phase that misbehaved.
//
// The package is deliberately tiny: IDs, the Context pair, and an
// in-memory Trace/Span tree with JSON and text renderings. It is not an
// OpenTelemetry SDK; it is the minimal identity layer the fleet needs,
// with a wire format (traceparent) any real collector understands.
package otrace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
)

// TraceID is the 128-bit identity of one logical request, shared by all
// its spans. The zero value is invalid, per the W3C spec.
type TraceID [16]byte

// SpanID is the 64-bit identity of one span. The zero value is invalid.
type SpanID [8]byte

// String renders the ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zeros value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zeros value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// NewTraceID returns a random, non-zero trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		mustRand(t[:])
	}
	return t
}

// NewSpanID returns a random, non-zero span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		mustRand(s[:])
	}
	return s
}

// mustRand fills b from crypto/rand; the platform CSPRNG not being
// readable is unrecoverable.
func mustRand(b []byte) {
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("otrace: crypto/rand: %v", err))
	}
}

// Context is one point in a trace: the trace it belongs to and the span
// that is current there. It is what crosses process and network
// boundaries (as a traceparent header) and what child work parents under.
type Context struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both IDs are non-zero.
func (c Context) Valid() bool { return !c.TraceID.IsZero() && !c.SpanID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value,
// version 00, sampled: "00-<32 hex>-<16 hex>-01".
func (c Context) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", c.TraceID, c.SpanID)
}

// Parse decodes a W3C traceparent header value. Any version except the
// reserved "ff" is accepted (per spec, unknown future versions must still
// parse their leading fields); the flags byte is validated as hex and
// otherwise ignored — this package treats every trace as sampled.
func Parse(traceparent string) (Context, error) {
	var c Context
	// version(2) - trace-id(32) - span-id(16) - flags(2)
	if len(traceparent) < 55 {
		return c, fmt.Errorf("otrace: traceparent %q too short", traceparent)
	}
	if traceparent[2] != '-' || traceparent[35] != '-' || traceparent[52] != '-' {
		return c, fmt.Errorf("otrace: traceparent %q is not dash-delimited", traceparent)
	}
	ver, err := hex.DecodeString(traceparent[0:2])
	if err != nil {
		return c, fmt.Errorf("otrace: traceparent version %q is not hex", traceparent[0:2])
	}
	if ver[0] == 0xff {
		return c, fmt.Errorf("otrace: traceparent version ff is invalid")
	}
	if ver[0] == 0 && len(traceparent) != 55 {
		return c, fmt.Errorf("otrace: version-00 traceparent must be 55 chars, got %d", len(traceparent))
	}
	if _, err := hex.Decode(c.TraceID[:], []byte(traceparent[3:35])); err != nil {
		return Context{}, fmt.Errorf("otrace: bad trace-id %q", traceparent[3:35])
	}
	if _, err := hex.Decode(c.SpanID[:], []byte(traceparent[36:52])); err != nil {
		return Context{}, fmt.Errorf("otrace: bad span-id %q", traceparent[36:52])
	}
	if _, err := hex.DecodeString(traceparent[53:55]); err != nil {
		return Context{}, fmt.Errorf("otrace: bad flags %q", traceparent[53:55])
	}
	if !c.Valid() {
		return Context{}, fmt.Errorf("otrace: traceparent %q has all-zero ids", traceparent)
	}
	return c, nil
}

// EnvVar is the environment variable child processes inherit a trace
// context from (a traceparent header value), so a shell pipeline of
// lisa-* tools shares one TraceID.
const EnvVar = "LISA_TRACEPARENT"

// FromEnv builds a trace for one tool invocation: joined under the
// LISA_TRACEPARENT context when the environment carries a valid one,
// fresh otherwise.
func FromEnv(name string) *Trace {
	if tp := os.Getenv(EnvVar); tp != "" {
		if ctx, err := Parse(tp); err == nil {
			return Join(ctx, name)
		}
	}
	return New(name)
}
