// Package cosim implements a small cycle-based HW/SW co-simulation kernel:
// the generated processor simulator advances one control step per clock
// cycle, and hardware device models tick on the same clock, exchanging data
// through memory-mapped addresses and interrupt lines.
//
// The paper motivates exactly this use (§1): co-simulation of hardware and
// software demands cycle-accurate processor models because pipelined DSPs
// cannot be coupled to cycle-based hardware simulation through
// instruction-latency accounting alone.
package cosim

import (
	"fmt"

	"golisa/internal/bitvec"
	"golisa/internal/model"
	"golisa/internal/sim"
)

// Bus is a memory-mapped window into one of the CPU's data memories.
// Devices read and write words the software also sees.
type Bus struct {
	state *model.State
	mem   *model.Resource
}

// NewBus creates a bus over the named memory resource.
func NewBus(s *sim.Simulator, memName string) (*Bus, error) {
	r := s.M.Resource(memName)
	if r == nil || !r.IsMemory() {
		return nil, fmt.Errorf("no memory resource %q", memName)
	}
	return &Bus{state: s.S, mem: r}, nil
}

// Read returns the word at addr (0 on out-of-range access).
func (b *Bus) Read(addr uint64) uint64 {
	v, err := b.state.ReadElem(b.mem, addr)
	if err != nil {
		return 0
	}
	return v.Uint()
}

// Write stores a word at addr; out-of-range writes are dropped.
func (b *Bus) Write(addr, val uint64) {
	_ = b.state.WriteElem(b.mem, addr, bitvec.New(val, b.mem.Width))
}

// Device is a hardware model ticked once per clock cycle after the CPU's
// control step.
type Device interface {
	// Name identifies the device in diagnostics.
	Name() string
	// Tick advances the device by one clock cycle.
	Tick(cycle uint64)
}

// Kernel drives the CPU and all devices on one shared clock.
type Kernel struct {
	CPU     *sim.Simulator
	Devices []Device

	cycle uint64
}

// New creates a co-simulation kernel around a generated CPU simulator.
func New(cpu *sim.Simulator) *Kernel {
	return &Kernel{CPU: cpu}
}

// Attach adds a device to the clock domain.
func (k *Kernel) Attach(d Device) { k.Devices = append(k.Devices, d) }

// Cycle returns the number of elapsed clock cycles.
func (k *Kernel) Cycle() uint64 { return k.cycle }

// Step advances the whole system by one clock cycle: CPU first, then each
// device in attach order.
func (k *Kernel) Step() error {
	if err := k.CPU.RunStep(); err != nil {
		return err
	}
	for _, d := range k.Devices {
		d.Tick(k.cycle)
	}
	k.cycle++
	return nil
}

// Run executes cycles until the CPU halts or maxCycles elapse, returning
// the number of cycles run.
func (k *Kernel) Run(maxCycles uint64) (uint64, error) {
	var n uint64
	for n < maxCycles {
		if k.CPU.Halted() {
			return n, nil
		}
		if err := k.Step(); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// --- devices -------------------------------------------------------------------

// Timer raises the CPU's interrupt line every Period cycles, modelling a
// periodic hardware timer.
type Timer struct {
	Period  uint64
	IRQName string // CPU resource holding the interrupt line (e.g. "irq")

	cpu    *sim.Simulator
	count  uint64
	Raised uint64 // number of interrupts raised
}

// NewTimer creates a timer bound to the CPU's named interrupt resource.
func NewTimer(cpu *sim.Simulator, irqName string, period uint64) *Timer {
	return &Timer{Period: period, IRQName: irqName, cpu: cpu}
}

// Name implements Device.
func (t *Timer) Name() string { return "timer" }

// Tick implements Device.
func (t *Timer) Tick(cycle uint64) {
	t.count++
	if t.Period > 0 && t.count >= t.Period {
		t.count = 0
		t.Raised++
		_ = t.cpu.SetScalar(t.IRQName, 1)
	}
}

// OutPort watches a memory-mapped data register: when the software writes a
// value with the ready bit (bit 31) set, the port captures the low 16 bits
// and clears the register — a minimal UART-style transmit port.
type OutPort struct {
	Bus  *Bus
	Addr uint64

	Captured []uint64
}

// NewOutPort creates an output port at the given word address.
func NewOutPort(bus *Bus, addr uint64) *OutPort {
	return &OutPort{Bus: bus, Addr: addr}
}

// Name implements Device.
func (p *OutPort) Name() string { return "outport" }

// Tick implements Device.
func (p *OutPort) Tick(cycle uint64) {
	v := p.Bus.Read(p.Addr)
	if v&(1<<31) != 0 {
		p.Captured = append(p.Captured, v&0xffff)
		p.Bus.Write(p.Addr, 0)
	}
}

// InPort feeds values into a memory-mapped receive register: whenever the
// software has consumed the previous value (register reads zero), the next
// queued value is presented with the ready bit set.
type InPort struct {
	Bus  *Bus
	Addr uint64

	queue []uint64
}

// NewInPort creates an input port at the given word address.
func NewInPort(bus *Bus, addr uint64) *InPort {
	return &InPort{Bus: bus, Addr: addr}
}

// Name implements Device.
func (p *InPort) Name() string { return "inport" }

// Feed queues a value for delivery.
func (p *InPort) Feed(vals ...uint64) { p.queue = append(p.queue, vals...) }

// Pending returns the number of undelivered values.
func (p *InPort) Pending() int { return len(p.queue) }

// Tick implements Device.
func (p *InPort) Tick(cycle uint64) {
	if len(p.queue) == 0 {
		return
	}
	if p.Bus.Read(p.Addr) == 0 {
		p.Bus.Write(p.Addr, p.queue[0]|(1<<31))
		p.queue = p.queue[1:]
	}
}
