package cosim

import (
	"strings"
	"testing"

	"golisa/internal/core"
	"golisa/internal/sim"
)

// packet renders a full-rate c62x fetch packet (see core tests).
func packet(insns ...string) string {
	var sb strings.Builder
	for _, in := range insns {
		sb.WriteString(in + "\n")
	}
	for i := len(insns); i < 8; i++ {
		sb.WriteString("|| NOP\n")
	}
	return sb.String()
}

func c62xSim(t *testing.T, src string) *sim.Simulator {
	t.Helper()
	m, err := core.LoadBuiltin("c62x")
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := m.AssembleAndLoad(src, sim.Compiled)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTimerRaisesInterruptAndISRRuns(t *testing.T) {
	// The main program is a long branch-free NOP runway (interrupts are
	// blocked while branches are in the pipeline, matching the C62xx); the
	// timer raises IRQ every 40 cycles; the ISR increments A14 and returns
	// to the runway.
	var runway strings.Builder
	for i := 0; i < 300; i++ {
		runway.WriteString(packet("NOP"))
	}
	isrStart := 300 * 8
	src := runway.String() +
		packet("IDLE") + packet("NOP") + packet("NOP") +
		// ISR follows the runway (+3 control packets).
		packet("MVK .S1 A13, 1") +
		packet("NOP") + packet("NOP") +
		packet("ADD .L1 A14, A14, A13") +
		packet("IRET") +
		packet("NOP") + packet("NOP") + packet("NOP") + packet("NOP") + packet("NOP")
	s := c62xSim(t, src)
	if err := s.SetScalar("isr_vector", uint64(isrStart+3*8)); err != nil {
		t.Fatal(err)
	}
	k := New(s)
	timer := NewTimer(s, "irq", 40)
	k.Attach(timer)
	if _, err := k.Run(280); err != nil {
		t.Fatal(err)
	}
	if timer.Raised < 5 {
		t.Errorf("timer raised %d interrupts, want >= 5", timer.Raised)
	}
	v, err := s.Mem("A", 14)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() < 3 {
		t.Errorf("ISR ran %d times, want >= 3", v.Int())
	}
	// Interrupt latency sanity: the ISR cannot run more often than the
	// timer fires.
	if uint64(v.Int()) > timer.Raised {
		t.Errorf("ISR ran %d times but only %d IRQs were raised", v.Int(), timer.Raised)
	}
}

func TestOutPortCapturesWrites(t *testing.T) {
	// Software writes 3 values with the ready bit to the port address
	// (word 100); the port captures and clears.
	mkSend := func(val string) string {
		return packet("MVK .S1 A1, "+val) +
			packet("MVKH .S1 A1, 0x8000") + // set ready bit 31
			packet("MVK .S1 A2, 100") +
			packet("NOP") +
			packet("STW .D1 A1, *A2[0]") +
			packet("NOP") + packet("NOP") + packet("NOP")
	}
	src := mkSend("11") + mkSend("22") + mkSend("33") + packet("IDLE") + packet("NOP")
	s := c62xSim(t, src)
	bus, err := NewBus(s, "data_mem")
	if err != nil {
		t.Fatal(err)
	}
	k := New(s)
	port := NewOutPort(bus, 100)
	k.Attach(port)
	if _, err := k.Run(10000); err != nil {
		t.Fatal(err)
	}
	if !s.Halted() {
		t.Fatal("program did not halt")
	}
	if len(port.Captured) != 3 {
		t.Fatalf("captured %d values: %v", len(port.Captured), port.Captured)
	}
	for i, want := range []uint64{11, 22, 33} {
		if port.Captured[i] != want {
			t.Errorf("captured[%d] = %d, want %d", i, port.Captured[i], want)
		}
	}
	if bus.Read(100) != 0 {
		t.Error("port register not cleared after capture")
	}
}

func TestInPortDeliversWhenConsumed(t *testing.T) {
	// The port presents values at word 101; software copies the payload to
	// word 200 + i and clears the register, letting the port present the
	// next value.
	src := packet("MVK .S1 A13, 1") + // constant 1
		packet("MVK .S1 A2, 101") + // port address
		packet("MVK .S1 A3, 200") + // sink address
		packet("MVK .S1 A9, 0") + // zero for clearing
		packet("NOP") + packet("NOP") +
		// poll loop at word 48
		packet("LDW .D1 *A2[0], A1") +
		packet("NOP 4") +
		packet("BZ .S1 A1, 48") + // not ready: poll again
		packet("NOP") + packet("NOP") + packet("NOP") + packet("NOP") + packet("NOP") +
		// handler at word 112: store payload, clear the register, advance
		// the sink pointer (after the STW's E3 has read it), loop.
		packet("STW .D1 A1, *A3[0]") +
		packet("STW .D1 A9, *A2[0]") +
		packet("NOP") +
		packet("NOP") +
		packet("ADD .L1 A3, A3, A13") +
		packet("B .S1 48") +
		packet("NOP") + packet("NOP") + packet("NOP") + packet("NOP") + packet("NOP")

	s := c62xSim(t, src)
	bus, err := NewBus(s, "data_mem")
	if err != nil {
		t.Fatal(err)
	}
	k := New(s)
	port := NewInPort(bus, 101)
	port.Feed(7, 8, 9)
	k.Attach(port)
	if _, err := k.Run(5000); err != nil {
		t.Fatal(err)
	}
	if port.Pending() != 0 {
		t.Fatalf("port still has %d undelivered values", port.Pending())
	}
	for i, want := range []uint64{7, 8, 9} {
		got := bus.Read(200 + uint64(i))
		if got&0xffff != want {
			t.Errorf("sink[%d] = %#x, want payload %d", i, got, want)
		}
	}
}

func TestKernelStopsWhenCPUHalts(t *testing.T) {
	s := c62xSim(t, packet("IDLE")+packet("NOP"))
	k := New(s)
	n, err := k.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if n >= 1000 {
		t.Error("kernel did not stop at CPU halt")
	}
	if k.Cycle() != n {
		t.Errorf("cycle count %d != run count %d", k.Cycle(), n)
	}
}

func TestBusBounds(t *testing.T) {
	s := c62xSim(t, packet("IDLE"))
	bus, err := NewBus(s, "data_mem")
	if err != nil {
		t.Fatal(err)
	}
	if got := bus.Read(1 << 40); got != 0 {
		t.Errorf("out-of-range read = %d", got)
	}
	bus.Write(1<<40, 5) // must not panic
	if _, err := NewBus(s, "nosuch"); err == nil {
		t.Error("expected error for unknown memory")
	}
	if _, err := NewBus(s, "pc"); err == nil {
		t.Error("expected error for scalar resource")
	}
}
