package cosim

import (
	"fmt"
	"io"

	"golisa/internal/sim"
	"golisa/internal/trace"
)

// Lockstep runs a reference simulator of the same model in lockstep with
// the kernel's CPU — one reference control step per clock cycle — and
// compares the two architectural states after every cycle. It is the
// observability side of co-simulation: a compiled simulator can be
// checked against its interpretive reference (or any two scheduling modes
// against each other) while the system runs, and the first divergence is
// reported with full flight-recorder context instead of surfacing as a
// mysteriously wrong result millions of cycles later.
//
// On the first mismatch the device latches Diverged/Detail/Cycle, notes a
// KindDiverge event in the attached flight recorder, dumps the ring to
// Out, and invokes OnDivergence. Comparison stops after the first hit so
// a diverged run does not flood its log.
type Lockstep struct {
	// Ref is the reference simulator; it must have been created from the
	// same model and loaded with the same program as the kernel's CPU.
	Ref *sim.Simulator

	// Flight, when non-nil, receives a KindDiverge note so post-mortem
	// dumps show the divergence amid the events that led to it.
	Flight *trace.Flight
	// Out, when non-nil, receives the flight-ring dump (and the
	// divergence detail) the moment a mismatch is found.
	Out io.Writer
	// OnDivergence, when non-nil, is called once on the first mismatch.
	OnDivergence func(cycle uint64, detail string)

	// Diverged, Detail and Cycle record the first mismatch.
	Diverged bool
	Detail   string
	Cycle    uint64

	cpu *sim.Simulator
}

// NewLockstep creates a lockstep checker comparing the kernel's CPU
// against a reference simulator of the same model.
func NewLockstep(cpu, ref *sim.Simulator) *Lockstep {
	return &Lockstep{Ref: ref, cpu: cpu}
}

// Name implements Device.
func (l *Lockstep) Name() string { return "lockstep" }

// Tick implements Device: the kernel has already stepped the CPU for this
// cycle, so advance the reference by one step and compare.
func (l *Lockstep) Tick(cycle uint64) {
	if l.Diverged {
		return
	}
	if !l.Ref.Halted() {
		if err := l.Ref.RunStep(); err != nil {
			l.diverge(cycle, fmt.Sprintf("reference simulator error: %v", err))
			return
		}
	}
	if eq, detail := l.cpu.S.Equal(l.Ref.S); !eq {
		l.diverge(cycle, detail)
	}
}

func (l *Lockstep) diverge(cycle uint64, detail string) {
	l.Diverged = true
	l.Detail = detail
	l.Cycle = cycle
	if l.Flight != nil {
		l.Flight.Note(trace.KindDiverge, detail, cycle)
	}
	if l.Out != nil {
		fmt.Fprintf(l.Out, "cosim divergence at cycle %d: %s\n", cycle, detail)
		if l.Flight != nil {
			_ = l.Flight.Dump(l.Out)
		}
	}
	if l.OnDivergence != nil {
		l.OnDivergence(cycle, detail)
	}
}
