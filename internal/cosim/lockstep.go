package cosim

import (
	"fmt"
	"io"
	"log/slog"

	"golisa/internal/model"
	"golisa/internal/replay"
	"golisa/internal/sim"
	"golisa/internal/trace"
)

// Lockstep runs a reference simulator of the same model in lockstep with
// the kernel's CPU — one reference control step per clock cycle — and
// compares the two architectural states after every cycle. It is the
// observability side of co-simulation: a compiled simulator can be
// checked against its interpretive reference (or any two scheduling modes
// against each other) while the system runs, and the first divergence is
// reported with full flight-recorder context instead of surfacing as a
// mysteriously wrong result millions of cycles later.
//
// On the first mismatch the device latches Diverged/Detail/Cycle, notes a
// KindDiverge event in the attached flight recorder, dumps the ring to
// Out, and invokes OnDivergence. Comparison stops after the first hit so
// a diverged run does not flood its log.
type Lockstep struct {
	// Ref is the reference simulator; it must have been created from the
	// same model and loaded with the same program as the kernel's CPU.
	Ref *sim.Simulator

	// CPUState, when non-nil, supplies the CPU-side architectural state
	// instead of a *sim.Simulator — the seam that lets engines living
	// outside package sim (the generated-code simulator, for one) be
	// lockstep-checked against the interpretive reference. The returned
	// state must be slot-compatible with Ref's model.
	CPUState func() *model.State

	// Flight, when non-nil, receives a KindDiverge note so post-mortem
	// dumps show the divergence amid the events that led to it.
	Flight *trace.Flight
	// CPURec and RefRec, when non-nil, are the recorders attached to the
	// CPU and reference simulators. On divergence each recording gets a
	// divergence note (so lisa-replay shows it in context), and the last
	// WindowCycles pre-divergence cycles of both event streams are dumped
	// to Out side by side — the exact schedule each simulator ran, not
	// just the end-state mismatch.
	CPURec *replay.Recorder
	RefRec *replay.Recorder
	// WindowCycles bounds the pre-divergence window dumped from the
	// recordings; 0 means the default of 8 cycles.
	WindowCycles uint64
	// Out, when non-nil, receives the flight-ring dump (and, unless Log
	// is set, the one-line divergence diagnostic) the moment a mismatch
	// is found.
	Out io.Writer
	// Log, when non-nil, receives the divergence as a structured log/slog
	// record (cycle, detail) instead of the free-text line on Out, so
	// service deployments get parseable divergence logs. The ring and
	// window dumps still go to Out — they are multi-line post-mortem
	// artifacts, not log records.
	Log *slog.Logger
	// OnDivergence, when non-nil, is called once on the first mismatch.
	OnDivergence func(cycle uint64, detail string)

	// Diverged, Detail and Cycle record the first mismatch.
	Diverged bool
	Detail   string
	Cycle    uint64

	cpu *sim.Simulator
}

// NewLockstep creates a lockstep checker comparing the kernel's CPU
// against a reference simulator of the same model.
func NewLockstep(cpu, ref *sim.Simulator) *Lockstep {
	return &Lockstep{Ref: ref, cpu: cpu}
}

// NewLockstepState creates a lockstep checker whose CPU side is any
// engine that can render its architectural state as a *model.State. The
// caller drives Tick once per completed CPU control step.
func NewLockstepState(state func() *model.State, ref *sim.Simulator) *Lockstep {
	return &Lockstep{Ref: ref, CPUState: state}
}

// Name implements Device.
func (l *Lockstep) Name() string { return "lockstep" }

// Tick implements Device: the kernel has already stepped the CPU for this
// cycle, so advance the reference by one step and compare.
func (l *Lockstep) Tick(cycle uint64) {
	if l.Diverged {
		return
	}
	if !l.Ref.Halted() {
		if err := l.Ref.RunStep(); err != nil {
			l.diverge(cycle, fmt.Sprintf("reference simulator error: %v", err))
			return
		}
	}
	var cpuS *model.State
	if l.CPUState != nil {
		cpuS = l.CPUState()
	} else {
		cpuS = l.cpu.S
	}
	if eq, detail := cpuS.Equal(l.Ref.S); !eq {
		l.diverge(cycle, detail)
	}
}

func (l *Lockstep) diverge(cycle uint64, detail string) {
	l.Diverged = true
	l.Detail = detail
	l.Cycle = cycle
	if l.Flight != nil {
		l.Flight.Note(trace.KindDiverge, detail, cycle)
	}
	if l.CPURec != nil {
		l.CPURec.Note("cosim divergence: "+detail, cycle)
	}
	if l.RefRec != nil {
		l.RefRec.Note("cosim divergence: "+detail, cycle)
	}
	if l.Log != nil {
		l.Log.Error("cosim divergence", "cycle", cycle, "detail", detail)
	}
	if l.Out != nil {
		if l.Log == nil {
			fmt.Fprintf(l.Out, "cosim divergence at cycle %d: %s\n", cycle, detail)
		}
		if l.Flight != nil {
			_ = l.Flight.Dump(l.Out)
		}
		l.dumpWindow(l.Out, "cpu", l.CPURec, cycle)
		l.dumpWindow(l.Out, "ref", l.RefRec, cycle)
	}
	if l.OnDivergence != nil {
		l.OnDivergence(cycle, detail)
	}
}

// dumpWindow prints the recorded events of the last WindowCycles cycles
// leading up to (and including) the divergence cycle.
func (l *Lockstep) dumpWindow(w io.Writer, label string, rec *replay.Recorder, cycle uint64) {
	if rec == nil {
		return
	}
	window := l.WindowCycles
	if window == 0 {
		window = 8
	}
	lo := uint64(0)
	if cycle >= window {
		lo = cycle - window + 1
	}
	fmt.Fprintf(w, "%s recording, cycles %d..%d before divergence:\n", label, lo, cycle)
	n := 0
	for _, e := range rec.TailEvents() {
		if e.Step < lo || e.Step > cycle {
			continue
		}
		fmt.Fprintf(w, "  %s\n", e.String())
		n++
	}
	if n == 0 {
		fmt.Fprintf(w, "  (no events in window)\n")
	}
}
