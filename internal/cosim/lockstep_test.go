package cosim

import (
	"strings"
	"testing"

	"golisa/internal/core"
	"golisa/internal/sim"
	"golisa/internal/trace"
)

const lockstepProg = `
start:  LDI B1, 1
        LDI A1, 8
loop:   SUB A1, A1, B1
        BNZ A1, loop
        NOP
        NOP
        HALT
`

// lockstepPair builds a compiled CPU and an interpretive reference from
// the same simple16 program.
func lockstepPair(t *testing.T) (cpu, ref *sim.Simulator) {
	t.Helper()
	m, err := core.LoadBuiltin("simple16")
	if err != nil {
		t.Fatal(err)
	}
	cpu, _, err = m.AssembleAndLoad(lockstepProg, sim.Compiled)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err = m.AssembleAndLoad(lockstepProg, sim.Interpretive)
	if err != nil {
		t.Fatal(err)
	}
	return cpu, ref
}

// TestLockstepAgreement runs compiled vs interpretive to completion and
// expects no divergence: the two scheduling modes are architecturally
// identical.
func TestLockstepAgreement(t *testing.T) {
	cpu, ref := lockstepPair(t)
	k := New(cpu)
	ls := NewLockstep(cpu, ref)
	k.Attach(ls)
	if _, err := k.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !cpu.Halted() {
		t.Fatal("program did not halt")
	}
	if ls.Diverged {
		t.Fatalf("spurious divergence at cycle %d: %s", ls.Cycle, ls.Detail)
	}
	if !ref.Halted() {
		t.Error("reference did not track the CPU to the halt")
	}
}

// TestLockstepDetectsDivergence corrupts the reference state mid-run and
// expects the checker to latch the mismatch, note it in the flight ring
// and dump the ring.
func TestLockstepDetectsDivergence(t *testing.T) {
	cpu, ref := lockstepPair(t)
	flight := trace.NewFlight(32)
	cpu.SetObserver(flight)

	k := New(cpu)
	ls := NewLockstep(cpu, ref)
	ls.Flight = flight
	var dump strings.Builder
	ls.Out = &dump
	var cbCycle uint64
	calls := 0
	ls.OnDivergence = func(cycle uint64, detail string) { cbCycle, calls = cycle, calls+1 }
	k.Attach(ls)

	// A few clean cycles, then poke a register only in the reference.
	for i := 0; i < 4; i++ {
		if err := k.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if ls.Diverged {
		t.Fatalf("diverged before corruption: %s", ls.Detail)
	}
	if err := ref.SetScalar("accu", 0xdead); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(10_000); err != nil {
		t.Fatal(err)
	}

	if !ls.Diverged {
		t.Fatal("corrupted reference not detected")
	}
	if !strings.Contains(ls.Detail, "accu") {
		t.Errorf("detail %q does not name the diverging resource", ls.Detail)
	}
	if calls != 1 || cbCycle != ls.Cycle {
		t.Errorf("OnDivergence calls=%d cycle=%d, want 1 call at cycle %d", calls, cbCycle, ls.Cycle)
	}
	out := dump.String()
	if !strings.Contains(out, "cosim divergence at cycle") || !strings.Contains(out, "flight recorder") {
		t.Errorf("divergence dump missing header or ring:\n%s", out)
	}
	if !strings.Contains(out, "DIVERGE") {
		t.Errorf("flight ring dump has no DIVERGE event:\n%s", out)
	}
}
