package cosim

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"golisa/internal/core"
	"golisa/internal/replay"
	"golisa/internal/sim"
	"golisa/internal/trace"
)

const lockstepProg = `
start:  LDI B1, 1
        LDI A1, 8
loop:   SUB A1, A1, B1
        BNZ A1, loop
        NOP
        NOP
        HALT
`

// lockstepPair builds a compiled CPU and an interpretive reference from
// the same simple16 program.
func lockstepPair(t *testing.T) (cpu, ref *sim.Simulator) {
	t.Helper()
	m, err := core.LoadBuiltin("simple16")
	if err != nil {
		t.Fatal(err)
	}
	cpu, _, err = m.AssembleAndLoad(lockstepProg, sim.Compiled)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err = m.AssembleAndLoad(lockstepProg, sim.Interpretive)
	if err != nil {
		t.Fatal(err)
	}
	return cpu, ref
}

// TestLockstepAgreement runs compiled vs interpretive to completion and
// expects no divergence: the two scheduling modes are architecturally
// identical.
func TestLockstepAgreement(t *testing.T) {
	cpu, ref := lockstepPair(t)
	k := New(cpu)
	ls := NewLockstep(cpu, ref)
	k.Attach(ls)
	if _, err := k.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !cpu.Halted() {
		t.Fatal("program did not halt")
	}
	if ls.Diverged {
		t.Fatalf("spurious divergence at cycle %d: %s", ls.Cycle, ls.Detail)
	}
	if !ref.Halted() {
		t.Error("reference did not track the CPU to the halt")
	}
}

// TestLockstepDetectsDivergence corrupts the reference state mid-run and
// expects the checker to latch the mismatch, note it in the flight ring
// and dump the ring.
func TestLockstepDetectsDivergence(t *testing.T) {
	cpu, ref := lockstepPair(t)
	flight := trace.NewFlight(32)
	cpu.SetObserver(flight)

	k := New(cpu)
	ls := NewLockstep(cpu, ref)
	ls.Flight = flight
	var dump strings.Builder
	ls.Out = &dump
	var cbCycle uint64
	calls := 0
	ls.OnDivergence = func(cycle uint64, detail string) { cbCycle, calls = cycle, calls+1 }
	k.Attach(ls)

	// A few clean cycles, then poke a register only in the reference.
	for i := 0; i < 4; i++ {
		if err := k.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if ls.Diverged {
		t.Fatalf("diverged before corruption: %s", ls.Detail)
	}
	if err := ref.SetScalar("accu", 0xdead); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(10_000); err != nil {
		t.Fatal(err)
	}

	if !ls.Diverged {
		t.Fatal("corrupted reference not detected")
	}
	if !strings.Contains(ls.Detail, "accu") {
		t.Errorf("detail %q does not name the diverging resource", ls.Detail)
	}
	if calls != 1 || cbCycle != ls.Cycle {
		t.Errorf("OnDivergence calls=%d cycle=%d, want 1 call at cycle %d", calls, cbCycle, ls.Cycle)
	}
	out := dump.String()
	if !strings.Contains(out, "cosim divergence at cycle") || !strings.Contains(out, "flight recorder") {
		t.Errorf("divergence dump missing header or ring:\n%s", out)
	}
	if !strings.Contains(out, "DIVERGE") {
		t.Errorf("flight ring dump has no DIVERGE event:\n%s", out)
	}
}

// TestLockstepStructuredLog wires a slog logger into the checker and
// expects the divergence as one structured record (cycle + detail attrs)
// while the free-text one-liner is suppressed on Out; the ring dump still
// lands there.
func TestLockstepStructuredLog(t *testing.T) {
	cpu, ref := lockstepPair(t)
	flight := trace.NewFlight(32)
	cpu.SetObserver(flight)

	k := New(cpu)
	ls := NewLockstep(cpu, ref)
	ls.Flight = flight
	var logBuf, dump strings.Builder
	ls.Log = slog.New(slog.NewJSONHandler(&logBuf, nil))
	ls.Out = &dump
	k.Attach(ls)

	if err := k.Step(); err != nil {
		t.Fatal(err)
	}
	if err := ref.SetScalar("accu", 0xdead); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !ls.Diverged {
		t.Fatal("corrupted reference not detected")
	}

	var rec struct {
		Level  string `json:"level"`
		Msg    string `json:"msg"`
		Cycle  uint64 `json:"cycle"`
		Detail string `json:"detail"`
	}
	if err := json.Unmarshal([]byte(logBuf.String()), &rec); err != nil {
		t.Fatalf("log output is not one JSON record: %v:\n%s", err, logBuf.String())
	}
	if rec.Level != "ERROR" || rec.Msg != "cosim divergence" || rec.Cycle != ls.Cycle || !strings.Contains(rec.Detail, "accu") {
		t.Errorf("structured record = %+v, want ERROR cosim divergence at cycle %d", rec, ls.Cycle)
	}
	out := dump.String()
	if strings.Contains(out, "cosim divergence at cycle") {
		t.Errorf("free-text one-liner still emitted alongside the structured log:\n%s", out)
	}
	if !strings.Contains(out, "flight recorder") {
		t.Errorf("ring dump missing from Out:\n%s", out)
	}
}

// TestLockstepDivergenceWindow attaches recorders to both simulators and
// expects the divergence report to include the last pre-divergence cycles
// from each recording, plus a divergence note inside the recordings
// themselves.
func TestLockstepDivergenceWindow(t *testing.T) {
	cpu, ref := lockstepPair(t)
	m, err := core.LoadBuiltin("simple16")
	if err != nil {
		t.Fatal(err)
	}
	var cpuBuf, refBuf bytes.Buffer
	cpuRec := replay.NewRecorder(cpu, m.Source, &cpuBuf, replay.Options{Every: 16})
	refRec := replay.NewRecorder(ref, m.Source, &refBuf, replay.Options{Every: 16})
	cpu.SetObserver(cpuRec)
	ref.SetObserver(refRec)

	k := New(cpu)
	ls := NewLockstep(cpu, ref)
	ls.CPURec, ls.RefRec, ls.WindowCycles = cpuRec, refRec, 4
	var dump strings.Builder
	ls.Out = &dump
	k.Attach(ls)

	for i := 0; i < 6; i++ {
		if err := k.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.SetScalar("accu", 0xdead); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !ls.Diverged {
		t.Fatal("corrupted reference not detected")
	}

	out := dump.String()
	for _, want := range []string{"cpu recording, cycles", "ref recording, cycles", "exec"} {
		if !strings.Contains(out, want) {
			t.Errorf("divergence report missing %q:\n%s", want, out)
		}
	}

	// Both recordings carry the divergence note for post-mortem replay.
	for name, rec := range map[string]*replay.Recorder{"cpu": cpuRec, "ref": refRec} {
		if err := rec.Close(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for name, buf := range map[string]*bytes.Buffer{"cpu": &cpuBuf, "ref": &refBuf} {
		recd, err := replay.Parse(buf.Bytes())
		if err != nil {
			t.Fatalf("%s recording does not parse: %v", name, err)
		}
		evs := recd.EventsInRange(0, recd.FinalStep+1)
		found := false
		for _, e := range evs {
			if e.Kind == trace.KindDiverge && strings.Contains(e.Name, "cosim divergence") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s recording has no divergence note", name)
		}
	}
}
