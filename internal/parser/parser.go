// Package parser implements the recursive-descent parser for LISA
// descriptions, covering resource/pipeline declarations, operations with all
// predefined sections, compile-time conditional operation structuring, and
// the embedded C-subset behavior language.
package parser

import (
	"fmt"
	"strings"

	"golisa/internal/ast"
	"golisa/internal/lexer"
)

// Parser holds the token stream and accumulated diagnostics.
type Parser struct {
	toks []lexer.Token
	pos  int
	errs []error
}

type bailout struct{}

// Parse parses a complete LISA description from src. It returns the AST and
// all diagnostics (lexical and syntactic); the AST is usable only when the
// error slice is empty.
func Parse(src, file string) (*ast.Description, []error) {
	l := lexer.New(src, file)
	toks := l.All()
	p := &Parser{toks: toks}
	p.errs = append(p.errs, l.Errors()...)
	d := p.parseDescription()
	return d, p.errs
}

func (p *Parser) cur() lexer.Token { return p.toks[p.pos] }
func (p *Parser) at(i int) lexer.Token {
	if p.pos+i >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+i]
}

func (p *Parser) next() lexer.Token {
	t := p.toks[p.pos]
	if t.Kind != lexer.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(t lexer.Token, format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", t.Pos, fmt.Sprintf(format, args...)))
}

// fail records an error and unwinds to the nearest recovery point.
func (p *Parser) fail(t lexer.Token, format string, args ...any) {
	p.errorf(t, format, args...)
	panic(bailout{})
}

func (p *Parser) expectPunct(s string) lexer.Token {
	t := p.cur()
	if !t.Is(s) {
		p.fail(t, "expected '%s', found %s", s, t)
	}
	return p.next()
}

func (p *Parser) expectIdent() lexer.Token {
	t := p.cur()
	if t.Kind != lexer.IDENT {
		p.fail(t, "expected identifier, found %s", t)
	}
	return p.next()
}

func (p *Parser) expectNumber() lexer.Token {
	t := p.cur()
	if t.Kind == lexer.BINPAT && !strings.ContainsRune(t.Text, 'x') {
		// A fully-specified binary pattern is usable as a number.
		var v uint64
		for _, c := range t.Text {
			v = v<<1 | uint64(c-'0')
		}
		p.next()
		return lexer.Token{Kind: lexer.NUMBER, Text: t.Text, Val: v, Pos: t.Pos}
	}
	if t.Kind != lexer.NUMBER {
		p.fail(t, "expected number, found %s", t)
	}
	return p.next()
}

func (p *Parser) acceptPunct(s string) bool {
	if p.cur().Is(s) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) acceptIdent(name string) bool {
	if p.cur().IsIdent(name) {
		p.next()
		return true
	}
	return false
}

// skipToTopLevel advances past tokens until the next RESOURCE/OPERATION
// keyword or EOF, balancing braces so keyword-lookalikes inside bodies do not
// stop the resync early.
func (p *Parser) skipToTopLevel() {
	depth := 0
	for {
		t := p.cur()
		switch {
		case t.Kind == lexer.EOF:
			return
		case t.Is("{"):
			depth++
		case t.Is("}"):
			if depth > 0 {
				depth--
			}
		case depth == 0 && (t.IsIdent("RESOURCE") || t.IsIdent("OPERATION")):
			return
		}
		p.next()
	}
}

func (p *Parser) parseDescription() *ast.Description {
	d := &ast.Description{}
	for p.cur().Kind != lexer.EOF {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(bailout); !ok {
						panic(r)
					}
					p.skipToTopLevel()
				}
			}()
			t := p.cur()
			switch {
			case t.IsIdent("RESOURCE"):
				p.parseResourceSection(d)
			case t.IsIdent("OPERATION"):
				d.Operations = append(d.Operations, p.parseOperation())
			default:
				p.fail(t, "expected RESOURCE or OPERATION at top level, found %s", t)
			}
		}()
		if p.cur().Kind == lexer.EOF {
			break
		}
	}
	return d
}

// --- RESOURCE section -------------------------------------------------------

var resourceClasses = map[string]ast.ResourceClass{
	"REGISTER":         ast.ClassRegister,
	"CONTROL_REGISTER": ast.ClassControlRegister,
	"PROGRAM_COUNTER":  ast.ClassProgramCounter,
	"DATA_MEMORY":      ast.ClassDataMemory,
	"PROGRAM_MEMORY":   ast.ClassProgramMemory,
}

func (p *Parser) parseResourceSection(d *ast.Description) {
	p.expectIdent() // RESOURCE
	p.expectPunct("{")
	for !p.cur().Is("}") {
		if p.cur().Kind == lexer.EOF {
			p.fail(p.cur(), "unterminated RESOURCE section")
		}
		if p.cur().IsIdent("PIPELINE") {
			d.Pipelines = append(d.Pipelines, p.parsePipelineDecl())
			continue
		}
		d.Resources = append(d.Resources, p.parseResourceDecl())
	}
	p.next() // }
}

func (p *Parser) parsePipelineDecl() *ast.PipelineDecl {
	start := p.expectIdent() // PIPELINE
	name := p.expectIdent()
	p.expectPunct("=")
	p.expectPunct("{")
	pd := &ast.PipelineDecl{Pos: start.Pos, Name: name.Text}
	for !p.cur().Is("}") {
		st := p.expectIdent()
		pd.Stages = append(pd.Stages, st.Text)
		if !p.acceptPunct(";") && !p.acceptPunct(",") {
			break
		}
	}
	p.expectPunct("}")
	p.acceptPunct(";")
	if len(pd.Stages) == 0 {
		p.errorf(start, "pipeline %s has no stages", pd.Name)
	}
	return pd
}

// parseType parses a behavior/resource type: int, long, unsigned [int],
// bool, bit, bit[N].
func (p *Parser) parseType() (ast.TypeSpec, bool) {
	t := p.cur()
	if t.Kind != lexer.IDENT {
		return ast.TypeSpec{}, false
	}
	switch t.Text {
	case "int":
		p.next()
		return ast.TypeSpec{Kind: ast.TypeInt, Width: 32}, true
	case "long":
		p.next()
		return ast.TypeSpec{Kind: ast.TypeLong, Width: 64}, true
	case "unsigned":
		p.next()
		p.acceptIdent("int")
		return ast.TypeSpec{Kind: ast.TypeUint, Width: 32}, true
	case "bool":
		p.next()
		return ast.TypeSpec{Kind: ast.TypeBit, Width: 1}, true
	case "bit":
		p.next()
		width := 1
		if p.acceptPunct("[") {
			n := p.expectNumber()
			width = int(n.Val)
			p.expectPunct("]")
			if width < 1 || width > 64 {
				p.errorf(n, "bit width %d out of range [1,64]", width)
				width = 64
			}
		}
		return ast.TypeSpec{Kind: ast.TypeBit, Width: width}, true
	}
	return ast.TypeSpec{}, false
}

func (p *Parser) parseResourceDecl() *ast.ResourceDecl {
	start := p.cur()
	r := &ast.ResourceDecl{Pos: start.Pos, Class: ast.ClassNone}
	if cls, ok := resourceClasses[start.Text]; ok && start.Kind == lexer.IDENT {
		r.Class = cls
		p.next()
	}
	ty, ok := p.parseType()
	if !ok {
		p.fail(p.cur(), "expected type in resource declaration, found %s", p.cur())
	}
	r.Type = ty
	r.Name = p.expectIdent().Text

	// Extent: [N], [lo..hi], or banked [B]([N]) — paper Example 1 shows
	// data_mem2[4]([0x20000]).
	if p.acceptPunct("[") {
		lo := p.expectNumber()
		if p.acceptPunct("..") {
			hi := p.expectNumber()
			r.HasRange = true
			r.RangeLo, r.RangeHi = lo.Val, hi.Val
			if hi.Val < lo.Val {
				p.errorf(hi, "memory range upper bound %#x below lower bound %#x", hi.Val, lo.Val)
			}
		} else {
			r.Size = lo.Val
		}
		p.expectPunct("]")
		if p.acceptPunct("(") {
			p.expectPunct("[")
			n := p.expectNumber()
			p.expectPunct("]")
			p.expectPunct(")")
			r.Banks = int(r.Size)
			r.Size = n.Val
		}
	}

	for {
		switch {
		case p.acceptIdent("WAIT"):
			r.Wait = int(p.expectNumber().Val)
		case p.acceptIdent("LATCH"):
			r.Latch = true
		case p.acceptIdent("ALIAS"):
			r.IsAlias = true
			r.AliasOf = p.expectIdent().Text
			p.expectPunct("[")
			hi := p.expectNumber()
			p.expectPunct("..")
			lo := p.expectNumber()
			p.expectPunct("]")
			r.AliasHi, r.AliasLo = int(hi.Val), int(lo.Val)
			if r.AliasHi < r.AliasLo {
				r.AliasHi, r.AliasLo = r.AliasLo, r.AliasHi
			}
		default:
			p.expectPunct(";")
			return r
		}
	}
}

// --- OPERATION --------------------------------------------------------------

func (p *Parser) parseOperation() *ast.Operation {
	start := p.expectIdent() // OPERATION
	name := p.expectIdent()
	op := &ast.Operation{Pos: start.Pos, Name: name.Text}
	for {
		switch {
		case p.acceptIdent("ALIAS"):
			op.Alias = true
		case p.acceptIdent("IN"):
			pipe := p.expectIdent()
			p.expectPunct(".")
			stage := p.expectIdent()
			op.Pipe, op.Stage = pipe.Text, stage.Text
		default:
			goto body
		}
	}
body:
	p.expectPunct("{")
	op.Sections = p.parseSections()
	p.expectPunct("}")
	return op
}

// parseSections parses sections until the closing '}' of the surrounding
// block (not consumed).
func (p *Parser) parseSections() []ast.Section {
	var secs []ast.Section
	for !p.cur().Is("}") {
		if p.cur().Kind == lexer.EOF {
			p.fail(p.cur(), "unterminated operation body")
		}
		secs = append(secs, p.parseSection())
	}
	return secs
}

func (p *Parser) parseSection() ast.Section {
	t := p.cur()
	if t.Kind != lexer.IDENT {
		p.fail(t, "expected section name, found %s", t)
	}
	switch t.Text {
	case "DECLARE":
		return p.parseDeclareSec()
	case "CODING":
		return p.parseCodingSec()
	case "SYNTAX":
		return p.parseSyntaxSec()
	case "SEMANTICS":
		return p.parseRawSec("SEMANTICS")
	case "BEHAVIOR":
		p.next()
		pos := p.cur().Pos
		body := p.parseBlock()
		return &ast.BehaviorSec{Pos: pos, Body: body}
	case "EXPRESSION":
		return p.parseExpressionSec()
	case "ACTIVATION":
		return p.parseActivationSec()
	case "SWITCH":
		return p.parseSwitchSec()
	case "IF":
		return p.parseIfSec()
	default:
		// User-defined section (e.g. POWER): raw capture.
		if p.at(1).Is("{") {
			sec := p.parseRawSec(t.Text)
			return sec
		}
		p.fail(t, "unknown section %q", t.Text)
		return nil
	}
}

func (p *Parser) parseDeclareSec() *ast.DeclareSec {
	start := p.expectIdent() // DECLARE
	p.expectPunct("{")
	ds := &ast.DeclareSec{Pos: start.Pos}
	for !p.cur().Is("}") {
		t := p.cur()
		switch {
		case t.IsIdent("GROUP"):
			p.next()
			g := &ast.GroupDecl{Pos: t.Pos}
			g.Names = append(g.Names, p.expectIdent().Text)
			for p.acceptPunct(",") {
				g.Names = append(g.Names, p.expectIdent().Text)
			}
			p.expectPunct("=")
			p.expectPunct("{")
			for !p.cur().Is("}") {
				g.Members = append(g.Members, p.expectIdent().Text)
				p.acceptPunct(",")
				p.acceptPunct(";")
			}
			p.next() // }
			p.acceptPunct(";")
			if len(g.Members) == 0 {
				p.errorf(t, "group %s has no members", strings.Join(g.Names, ","))
			}
			ds.Groups = append(ds.Groups, g)
		case t.IsIdent("LABEL"):
			p.next()
			ds.Labels = append(ds.Labels, p.expectIdent().Text)
			for p.acceptPunct(",") {
				ds.Labels = append(ds.Labels, p.expectIdent().Text)
			}
			p.acceptPunct(";")
		case t.IsIdent("REFERENCE"):
			p.next()
			ds.Refs = append(ds.Refs, p.expectIdent().Text)
			for p.acceptPunct(",") {
				ds.Refs = append(ds.Refs, p.expectIdent().Text)
			}
			p.acceptPunct(";")
		case t.IsIdent("INSTANCE"):
			p.next()
			ds.Enums = append(ds.Enums, p.expectIdent().Text)
			for p.acceptPunct(",") {
				ds.Enums = append(ds.Enums, p.expectIdent().Text)
			}
			p.acceptPunct(";")
		default:
			p.fail(t, "expected GROUP, LABEL, REFERENCE or INSTANCE in DECLARE, found %s", t)
		}
	}
	p.next() // }
	return ds
}

func (p *Parser) parseCodingSec() *ast.CodingSec {
	start := p.expectIdent() // CODING
	p.expectPunct("{")
	cs := &ast.CodingSec{Pos: start.Pos}
	// Coding root: resource == elems
	if p.cur().Kind == lexer.IDENT && p.at(1).Is("==") {
		cs.CompareTo = p.next().Text
		p.next() // ==
	}
	for !p.cur().Is("}") {
		cs.Elems = append(cs.Elems, p.parseCodingElem())
		p.acceptPunct(";")
	}
	p.next() // }
	if len(cs.Elems) == 0 {
		p.errorf(start, "empty CODING section")
	}
	return cs
}

func (p *Parser) parseCodingElem() ast.CodingElem {
	t := p.cur()
	switch t.Kind {
	case lexer.BINPAT:
		p.next()
		bits := t.Text
		if p.acceptPunct("[") {
			n := p.expectNumber()
			p.expectPunct("]")
			bits = strings.Repeat(bits, int(n.Val))
		}
		return &ast.CodingPattern{Pos: t.Pos, Bits: bits}
	case lexer.IDENT:
		p.next()
		if p.acceptPunct(":") {
			pt := p.cur()
			if pt.Kind != lexer.BINPAT {
				p.fail(pt, "expected binary pattern after '%s:', found %s", t.Text, pt)
			}
			p.next()
			bits := pt.Text
			if p.acceptPunct("[") {
				n := p.expectNumber()
				p.expectPunct("]")
				bits = strings.Repeat(bits, int(n.Val))
			}
			return &ast.CodingField{Pos: t.Pos, Label: t.Text, Bits: bits}
		}
		return &ast.CodingRef{Pos: t.Pos, Name: t.Text}
	default:
		p.fail(t, "expected coding element, found %s", t)
		return nil
	}
}

func (p *Parser) parseSyntaxSec() *ast.SyntaxSec {
	start := p.expectIdent() // SYNTAX
	p.expectPunct("{")
	ss := &ast.SyntaxSec{Pos: start.Pos}
	for !p.cur().Is("}") {
		t := p.cur()
		switch t.Kind {
		case lexer.STRING:
			p.next()
			ss.Elems = append(ss.Elems, &ast.SyntaxString{Pos: t.Pos, Text: t.Text})
		case lexer.IDENT:
			p.next()
			ref := &ast.SyntaxRef{Pos: t.Pos, Name: t.Text}
			if p.acceptPunct(":") {
				p.expectPunct("#")
				f := p.expectIdent()
				switch f.Text {
				case "u", "s", "x":
					ref.Format = "#" + f.Text
				default:
					p.errorf(f, "unknown syntax format #%s (want #u, #s or #x)", f.Text)
					ref.Format = "#u"
				}
			}
			ss.Elems = append(ss.Elems, ref)
		default:
			p.fail(t, "expected syntax element, found %s", t)
		}
		p.acceptPunct(";")
	}
	p.next() // }
	return ss
}

// parseRawSec captures the balanced-brace body of a section as text.
func (p *Parser) parseRawSec(name string) ast.Section {
	start := p.expectIdent()
	p.expectPunct("{")
	var sb strings.Builder
	depth := 1
	for depth > 0 {
		t := p.cur()
		if t.Kind == lexer.EOF {
			p.fail(t, "unterminated %s section", name)
		}
		if t.Is("{") {
			depth++
		}
		if t.Is("}") {
			depth--
			if depth == 0 {
				p.next()
				break
			}
		}
		// Join tokens readably: no space before closing punctuation or
		// separators, none after opening brackets.
		text := t.Text
		if t.Kind == lexer.STRING {
			text = fmt.Sprintf("%q", t.Text)
		}
		if sb.Len() > 0 && !noSpaceBefore(text) && !noSpaceAfterLast(sb.String()) {
			sb.WriteByte(' ')
		}
		sb.WriteString(text)
		p.next()
	}
	if name == "SEMANTICS" {
		return &ast.SemanticsSec{Pos: start.Pos, Text: sb.String()}
	}
	return &ast.CustomSec{Pos: start.Pos, Name: name, Text: sb.String()}
}

func noSpaceBefore(tok string) bool {
	switch tok {
	case ",", ";", ")", "]", ".", "..":
		return true
	}
	return false
}

func noSpaceAfterLast(s string) bool {
	switch s[len(s)-1] {
	case '(', '[', '.':
		return true
	}
	return false
}

func (p *Parser) parseExpressionSec() *ast.ExpressionSec {
	start := p.expectIdent() // EXPRESSION
	p.expectPunct("{")
	x := p.parseExpr()
	p.acceptPunct(";")
	p.expectPunct("}")
	return &ast.ExpressionSec{Pos: start.Pos, X: x}
}

// --- compile-time conditional structuring ------------------------------------

func (p *Parser) parseSwitchSec() *ast.SwitchSec {
	start := p.expectIdent() // SWITCH
	p.expectPunct("(")
	group := p.expectIdent().Text
	p.expectPunct(")")
	p.expectPunct("{")
	ss := &ast.SwitchSec{Pos: start.Pos, Group: group}
	for !p.cur().Is("}") {
		t := p.cur()
		var c ast.SwitchSecCase
		switch {
		case t.IsIdent("CASE"):
			p.next()
			c.Members = append(c.Members, p.expectIdent().Text)
			for p.acceptPunct(",") {
				c.Members = append(c.Members, p.expectIdent().Text)
			}
		case t.IsIdent("DEFAULT"):
			p.next()
			c.Default = true
		default:
			p.fail(t, "expected CASE or DEFAULT in SWITCH section, found %s", t)
		}
		p.expectPunct(":")
		p.expectPunct("{")
		c.Sections = p.parseSections()
		p.expectPunct("}")
		ss.Cases = append(ss.Cases, c)
	}
	p.next() // }
	if len(ss.Cases) == 0 {
		p.errorf(start, "SWITCH section has no cases")
	}
	return ss
}

func (p *Parser) parseIfSec() *ast.IfSec {
	start := p.expectIdent() // IF
	p.expectPunct("(")
	group := p.expectIdent().Text
	neg := false
	switch {
	case p.acceptPunct("=="):
	case p.acceptPunct("!="):
		neg = true
	default:
		p.fail(p.cur(), "expected == or != in IF section condition")
	}
	member := p.expectIdent().Text
	p.expectPunct(")")
	sec := &ast.IfSec{Pos: start.Pos, Group: group, Member: member, Negate: neg}
	p.expectPunct("{")
	sec.Then = p.parseSections()
	p.expectPunct("}")
	if p.acceptIdent("ELSE") {
		p.expectPunct("{")
		sec.Else = p.parseSections()
		p.expectPunct("}")
	}
	return sec
}

// --- ACTIVATION --------------------------------------------------------------

func (p *Parser) parseActivationSec() *ast.ActivationSec {
	start := p.expectIdent() // ACTIVATION
	p.expectPunct("{")
	as := &ast.ActivationSec{Pos: start.Pos}
	as.Items = p.parseActItems()
	p.expectPunct("}")
	return as
}

// parseActItems parses an activation list until the enclosing '}' (not
// consumed). Separators: ',' (concurrent) and ';' (one extra control step).
func (p *Parser) parseActItems() []ast.ActItem {
	var items []ast.ActItem
	delay := 0
	for {
		// Separators may precede an item: each ';' adds one control step of
		// delay for everything that follows (a leading ';' delays the first
		// item, e.g. ACTIVATION { ; Dispatch } re-activates next step).
		for {
			if p.acceptPunct(",") {
				continue
			}
			if p.acceptPunct(";") {
				delay++
				continue
			}
			break
		}
		if p.cur().Is("}") {
			return items
		}
		if p.cur().Kind == lexer.EOF {
			p.fail(p.cur(), "unterminated ACTIVATION section")
		}
		item := p.parseActItem(delay)
		if item != nil {
			items = append(items, item)
		}
	}
}

func (p *Parser) parseActItem(delay int) ast.ActItem {
	t := p.cur()
	switch {
	case t.IsIdent("if"):
		p.next()
		p.expectPunct("(")
		cond := p.parseExpr()
		p.expectPunct(")")
		p.expectPunct("{")
		then := p.parseActItems()
		p.expectPunct("}")
		node := &ast.ActIf{Pos: t.Pos, Cond: cond, Then: then}
		if p.acceptIdent("else") {
			if p.cur().IsIdent("if") {
				node.Else = []ast.ActItem{p.parseActItem(0)}
			} else {
				p.expectPunct("{")
				node.Else = p.parseActItems()
				p.expectPunct("}")
			}
		}
		return node
	case t.IsIdent("switch"):
		p.next()
		p.expectPunct("(")
		tag := p.parseExpr()
		p.expectPunct(")")
		p.expectPunct("{")
		node := &ast.ActSwitch{Pos: t.Pos, Tag: tag}
		for !p.cur().Is("}") {
			var c ast.ActCase
			switch {
			case p.acceptIdent("case"):
				c.Vals = append(c.Vals, p.parseExpr())
				for p.acceptPunct(",") {
					c.Vals = append(c.Vals, p.parseExpr())
				}
			case p.acceptIdent("default"):
				c.Default = true
			default:
				p.fail(p.cur(), "expected case or default in activation switch")
			}
			p.expectPunct(":")
			p.expectPunct("{")
			c.Items = p.parseActItems()
			p.expectPunct("}")
			node.Cases = append(node.Cases, c)
		}
		p.next() // }
		return node
	case t.Kind == lexer.IDENT:
		// operation/group ref, or pipeline op pipe[.stage].op()
		first := p.next().Text
		if !p.cur().Is(".") {
			// plain ref; tolerate trailing ()
			if p.acceptPunct("(") {
				p.expectPunct(")")
			}
			return &ast.ActRef{Pos: t.Pos, Name: first, Delay: delay}
		}
		var parts []string
		parts = append(parts, first)
		for p.acceptPunct(".") {
			parts = append(parts, p.expectIdent().Text)
		}
		hasCall := p.acceptPunct("(")
		if hasCall {
			p.expectPunct(")")
		}
		last := parts[len(parts)-1]
		if hasCall && (last == "shift" || last == "stall" || last == "flush") {
			po := &ast.ActPipeOp{Pos: t.Pos, Pipe: parts[0], Op: last, Delay: delay}
			if len(parts) == 3 {
				po.Stage = parts[1]
			} else if len(parts) != 2 {
				p.errorf(t, "malformed pipeline operation %s", strings.Join(parts, "."))
			}
			return po
		}
		p.errorf(t, "malformed activation item %s", strings.Join(parts, "."))
		return nil
	default:
		p.fail(t, "expected activation item, found %s", t)
		return nil
	}
}
