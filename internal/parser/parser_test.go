package parser

import (
	"strings"
	"testing"

	"golisa/internal/ast"
)

func mustParse(t *testing.T, src string) *ast.Description {
	t.Helper()
	d, errs := Parse(src, "test.lisa")
	for _, e := range errs {
		t.Errorf("parse error: %v", e)
	}
	if t.Failed() {
		t.FailNow()
	}
	return d
}

// Paper Example 1: declaration of resources.
func TestResourceSectionPaperExample1(t *testing.T) {
	src := `
RESOURCE {
  PROGRAM_COUNTER int pc;
  CONTROL_REGISTER int instruction_register;
  REGISTER bit[48] accu;
  REGISTER bit carry;
  DATA_MEMORY int data_mem1[0x80000];
  DATA_MEMORY int data_mem2[4]([0x20000]);
  PROGRAM_MEMORY int prog_mem[0x100..0xffff];
}
`
	d := mustParse(t, src)
	if len(d.Resources) != 7 {
		t.Fatalf("got %d resources, want 7", len(d.Resources))
	}
	pc := d.Resources[0]
	if pc.Class != ast.ClassProgramCounter || pc.Name != "pc" || pc.IsMemory() {
		t.Errorf("pc decl wrong: %+v", pc)
	}
	accu := d.Resources[2]
	if accu.Type.Kind != ast.TypeBit || accu.Type.Width != 48 {
		t.Errorf("accu type = %+v, want bit[48]", accu.Type)
	}
	carry := d.Resources[3]
	if carry.Type.Width != 1 {
		t.Errorf("carry width = %d, want 1", carry.Type.Width)
	}
	m1 := d.Resources[4]
	if m1.Size != 0x80000 || m1.Banks != 0 {
		t.Errorf("data_mem1: %+v", m1)
	}
	m2 := d.Resources[5]
	if m2.Banks != 4 || m2.Size != 0x20000 {
		t.Errorf("data_mem2 banked: banks=%d size=%#x", m2.Banks, m2.Size)
	}
	pm := d.Resources[6]
	if !pm.HasRange || pm.RangeLo != 0x100 || pm.RangeHi != 0xffff {
		t.Errorf("prog_mem range: %+v", pm)
	}
}

// Paper Example 2: pipeline definition.
func TestPipelineDeclPaperExample2(t *testing.T) {
	src := `
RESOURCE {
  PIPELINE fetch_pipe = { PG; PS; PW; PR; DP };
  PIPELINE execute_pipe = { DC; E1; E2; E3; E4; E5 };
}
`
	d := mustParse(t, src)
	if len(d.Pipelines) != 2 {
		t.Fatalf("got %d pipelines", len(d.Pipelines))
	}
	fp := d.Pipelines[0]
	if fp.Name != "fetch_pipe" || strings.Join(fp.Stages, " ") != "PG PS PW PR DP" {
		t.Errorf("fetch_pipe = %+v", fp)
	}
	ep := d.Pipelines[1]
	if len(ep.Stages) != 6 || ep.Stages[5] != "E5" {
		t.Errorf("execute_pipe = %+v", ep)
	}
}

// Paper Example 3: root of the coding tree.
func TestCodingRootPaperExample3(t *testing.T) {
	src := `
OPERATION decode {
  DECLARE {
    GROUP Instruction = { abs; add; and; cmp; ld; mul; mv; norm; not; or; sat; sub; st; xor };
  }
  CODING { instruction_register == Instruction }
  SYNTAX { Instruction }
  BEHAVIOR { Instruction(); }
}
`
	d := mustParse(t, src)
	op := d.Operations[0]
	if op.Name != "decode" {
		t.Fatalf("op name %q", op.Name)
	}
	ds := op.Sections[0].(*ast.DeclareSec)
	if len(ds.Groups) != 1 || len(ds.Groups[0].Members) != 14 {
		t.Fatalf("group members = %d, want 14", len(ds.Groups[0].Members))
	}
	cs := op.Sections[1].(*ast.CodingSec)
	if cs.CompareTo != "instruction_register" {
		t.Errorf("coding root resource = %q", cs.CompareTo)
	}
	if ref, ok := cs.Elems[0].(*ast.CodingRef); !ok || ref.Name != "Instruction" {
		t.Errorf("coding elem = %+v", cs.Elems[0])
	}
}

// Paper Example 4: operation groups, coding, syntax, behavior, labels.
func TestOperationGroupsPaperExample4(t *testing.T) {
	src := `
OPERATION add_d {
  DECLARE { GROUP Dest, Src1, Src2 = { register }; }
  CODING { Dest Src2 Src1 0b0000010000 0b1 0b10000 }
  SYNTAX { "ADD" ".D" Src1 "," Src2 "," Dest }
  BEHAVIOR { Dest = Src1 + Src2; }
}

OPERATION register {
  DECLARE { LABEL index; }
  CODING { 0bx index:0bx[4] }
  SYNTAX { "A" index:#u }
  EXPRESSION { A[index] }
}
`
	d := mustParse(t, src)
	if len(d.Operations) != 2 {
		t.Fatalf("got %d operations", len(d.Operations))
	}
	add := d.Operations[0]
	ds := add.Sections[0].(*ast.DeclareSec)
	if strings.Join(ds.Groups[0].Names, ",") != "Dest,Src1,Src2" {
		t.Errorf("group names: %v", ds.Groups[0].Names)
	}
	cs := add.Sections[1].(*ast.CodingSec)
	if len(cs.Elems) != 6 {
		t.Fatalf("coding elems = %d, want 6", len(cs.Elems))
	}
	if pat, ok := cs.Elems[3].(*ast.CodingPattern); !ok || pat.Bits != "0000010000" {
		t.Errorf("coding pattern: %+v", cs.Elems[3])
	}
	ss := add.Sections[2].(*ast.SyntaxSec)
	if s, ok := ss.Elems[0].(*ast.SyntaxString); !ok || s.Text != "ADD" {
		t.Errorf("mnemonic: %+v", ss.Elems[0])
	}
	bs := add.Sections[3].(*ast.BehaviorSec)
	as, ok := bs.Body.Stmts[0].(*ast.AssignStmt)
	if !ok || as.Op != "=" {
		t.Fatalf("behavior stmt: %+v", bs.Body.Stmts[0])
	}
	bin, ok := as.RHS.(*ast.BinaryExpr)
	if !ok || bin.Op != "+" {
		t.Errorf("behavior rhs: %+v", as.RHS)
	}

	reg := d.Operations[1]
	rds := reg.Sections[0].(*ast.DeclareSec)
	if len(rds.Labels) != 1 || rds.Labels[0] != "index" {
		t.Errorf("labels: %v", rds.Labels)
	}
	rcs := reg.Sections[1].(*ast.CodingSec)
	if f, ok := rcs.Elems[1].(*ast.CodingField); !ok || f.Label != "index" || f.Bits != "xxxx" {
		t.Errorf("coding field: %+v", rcs.Elems[1])
	}
	rss := reg.Sections[2].(*ast.SyntaxSec)
	if ref, ok := rss.Elems[1].(*ast.SyntaxRef); !ok || ref.Name != "index" || ref.Format != "#u" {
		t.Errorf("syntax param: %+v", rss.Elems[1])
	}
	es := reg.Sections[3].(*ast.ExpressionSec)
	if _, ok := es.X.(*ast.IndexExpr); !ok {
		t.Errorf("expression: %+v", es.X)
	}
}

// Paper Example 5: activation of operations.
func TestActivationPaperExample5(t *testing.T) {
	src := `
OPERATION Prog_Address_Generate IN fetch_pipe.PG { BEHAVIOR { ; } }

OPERATION main {
  ACTIVATION {
    if (dispatch_complete && !multicycle_nop) {
      Prog_Address_Generate,
      Prog_Address_Send,
      Prog_Access_Ready_Wait,
      Prog_Fetch_Packet_Receive,
      Dispatch
    }
    if (multicycle_nop) {
      fetch_pipe.DP.stall(),
      execute_pipe.DC.stall()
    },
    fetch_pipe.shift(),
    execute_pipe.shift()
  }
}
`
	d := mustParse(t, src)
	pag := d.Operations[0]
	if pag.Pipe != "fetch_pipe" || pag.Stage != "PG" {
		t.Errorf("stage assignment: %q.%q", pag.Pipe, pag.Stage)
	}
	main := d.Operations[1]
	as := main.Sections[0].(*ast.ActivationSec)
	if len(as.Items) != 4 {
		t.Fatalf("activation items = %d, want 4", len(as.Items))
	}
	if1, ok := as.Items[0].(*ast.ActIf)
	if !ok || len(if1.Then) != 5 {
		t.Fatalf("first if: %+v", as.Items[0])
	}
	if ref, ok := if1.Then[0].(*ast.ActRef); !ok || ref.Name != "Prog_Address_Generate" || ref.Delay != 0 {
		t.Errorf("first activation: %+v", if1.Then[0])
	}
	if2 := as.Items[1].(*ast.ActIf)
	po, ok := if2.Then[0].(*ast.ActPipeOp)
	if !ok || po.Pipe != "fetch_pipe" || po.Stage != "DP" || po.Op != "stall" {
		t.Errorf("stall op: %+v", if2.Then[0])
	}
	sh, ok := as.Items[2].(*ast.ActPipeOp)
	if !ok || sh.Pipe != "fetch_pipe" || sh.Stage != "" || sh.Op != "shift" {
		t.Errorf("shift op: %+v", as.Items[2])
	}
}

// Paper Example 6: conditional operation structuring.
func TestSwitchSectionPaperExample6(t *testing.T) {
	src := `
OPERATION register {
  DECLARE {
    GROUP Side = { side1; side2 };
    LABEL index;
  }
  CODING { Side index:0bx[4] }
  SWITCH (Side) {
    CASE side1: {
      SYNTAX { "A" index:#u }
      EXPRESSION { A[index] }
    }
    CASE side2: {
      SYNTAX { "B" index:#u }
      EXPRESSION { B[index] }
    }
  }
}

OPERATION side1 { CODING { 0b0 } SYNTAX { "1" } }
OPERATION side2 { CODING { 0b1 } SYNTAX { "2" } }
`
	d := mustParse(t, src)
	reg := d.Operations[0]
	var sw *ast.SwitchSec
	for _, s := range reg.Sections {
		if v, ok := s.(*ast.SwitchSec); ok {
			sw = v
		}
	}
	if sw == nil {
		t.Fatal("no SWITCH section parsed")
	}
	if sw.Group != "Side" || len(sw.Cases) != 2 {
		t.Fatalf("switch: %+v", sw)
	}
	c0 := sw.Cases[0]
	if c0.Members[0] != "side1" || len(c0.Sections) != 2 {
		t.Errorf("case side1: %+v", c0)
	}
	if _, ok := c0.Sections[1].(*ast.ExpressionSec); !ok {
		t.Errorf("case side1 expression: %+v", c0.Sections[1])
	}
}

func TestIfSection(t *testing.T) {
	src := `
OPERATION op {
  DECLARE { GROUP g = { a; b }; }
  CODING { g }
  IF (g == a) {
    SYNTAX { "A" }
  } ELSE {
    SYNTAX { "NOTA" }
  }
}
`
	d := mustParse(t, src)
	var ifs *ast.IfSec
	for _, s := range d.Operations[0].Sections {
		if v, ok := s.(*ast.IfSec); ok {
			ifs = v
		}
	}
	if ifs == nil {
		t.Fatal("no IF section")
	}
	if ifs.Group != "g" || ifs.Member != "a" || ifs.Negate {
		t.Errorf("if condition: %+v", ifs)
	}
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Errorf("branches: then=%d else=%d", len(ifs.Then), len(ifs.Else))
	}
}

func TestOperationOptions(t *testing.T) {
	src := `
OPERATION mv ALIAS IN execute_pipe.E1 {
  CODING { 0b0 }
}
`
	d := mustParse(t, src)
	op := d.Operations[0]
	if !op.Alias || op.Pipe != "execute_pipe" || op.Stage != "E1" {
		t.Errorf("options: %+v", op)
	}
}

func TestSemanticsAndCustomSections(t *testing.T) {
	src := `
OPERATION add {
  SEMANTICS { ADD dst, src1, src2 }
  POWER { 12 mW typical }
  CODING { 0b0 }
}
`
	d := mustParse(t, src)
	op := d.Operations[0]
	sem := op.Sections[0].(*ast.SemanticsSec)
	if !strings.Contains(sem.Text, "ADD") {
		t.Errorf("semantics text: %q", sem.Text)
	}
	cust := op.Sections[1].(*ast.CustomSec)
	if cust.Name != "POWER" || !strings.Contains(cust.Text, "12") {
		t.Errorf("custom section: %+v", cust)
	}
}

func TestBehaviorStatements(t *testing.T) {
	src := `
OPERATION b {
  BEHAVIOR {
    int i;
    int acc = 0;
    bit[40] t = 1;
    for (i = 0; i < 8; i++) {
      acc += mem[i] * 2;
    }
    while (acc > 100) acc -= 10;
    do { acc++; } while (acc < 0);
    if (acc == 42) { carry = 1; } else carry = 0;
    switch (acc) {
      case 1: acc = 2; break;
      case 2, 3: acc = 4;
      default: acc = 0;
    }
    acc = acc < 0 ? -acc : acc;
    r = saturate(acc, 16);
    pc = pc + 1;
    x = a[3..0];
    return acc;
  }
}
`
	d := mustParse(t, src)
	bs := d.Operations[0].Sections[0].(*ast.BehaviorSec)
	if len(bs.Body.Stmts) < 12 {
		t.Fatalf("stmts = %d", len(bs.Body.Stmts))
	}
	decl := bs.Body.Stmts[2].(*ast.DeclStmt)
	if decl.Type.Kind != ast.TypeBit || decl.Type.Width != 40 {
		t.Errorf("bit[40] decl: %+v", decl)
	}
	f := bs.Body.Stmts[3].(*ast.ForStmt)
	if f.Init == nil || f.Cond == nil || f.Post == nil {
		t.Errorf("for stmt: %+v", f)
	}
	sw := bs.Body.Stmts[7].(*ast.SwitchStmt)
	if len(sw.Cases) != 3 || len(sw.Cases[1].Vals) != 2 || !sw.Cases[2].Default {
		t.Errorf("switch: %+v", sw)
	}
	// acc = cond ? ... : ...
	cas := bs.Body.Stmts[8].(*ast.AssignStmt)
	if _, ok := cas.RHS.(*ast.CondExpr); !ok {
		t.Errorf("cond expr: %+v", cas.RHS)
	}
	// x = a[3..0]
	bits := bs.Body.Stmts[11].(*ast.AssignStmt)
	if _, ok := bits.RHS.(*ast.BitsExpr); !ok {
		t.Errorf("bits expr: %+v", bits.RHS)
	}
}

func TestExpressionPrecedence(t *testing.T) {
	src := `OPERATION b { BEHAVIOR { x = 1 + 2 * 3 == 7 && 4 | 2; } }`
	d := mustParse(t, src)
	as := d.Operations[0].Sections[0].(*ast.BehaviorSec).Body.Stmts[0].(*ast.AssignStmt)
	// top must be && (prec 2) with | on the right? No: | (3) binds tighter
	// than && (2), so top is &&.
	top, ok := as.RHS.(*ast.BinaryExpr)
	if !ok || top.Op != "&&" {
		t.Fatalf("top op: %+v", as.RHS)
	}
	l := top.L.(*ast.BinaryExpr)
	if l.Op != "==" {
		t.Errorf("left of &&: %s", l.Op)
	}
	add := l.L.(*ast.BinaryExpr)
	if add.Op != "+" {
		t.Errorf("expected + below ==: %s", add.Op)
	}
	mul := add.R.(*ast.BinaryExpr)
	if mul.Op != "*" {
		t.Errorf("expected * right of +: %s", mul.Op)
	}
	r := top.R.(*ast.BinaryExpr)
	if r.Op != "|" {
		t.Errorf("right of &&: %s", r.Op)
	}
}

func TestDottedCallInBehavior(t *testing.T) {
	src := `OPERATION b { BEHAVIOR { fetch_pipe.DP.stall(); p.shift(); } }`
	d := mustParse(t, src)
	b := d.Operations[0].Sections[0].(*ast.BehaviorSec).Body
	c0 := b.Stmts[0].(*ast.ExprStmt).X.(*ast.CallExpr)
	if c0.Name != "fetch_pipe.DP.stall" {
		t.Errorf("dotted call: %q", c0.Name)
	}
	c1 := b.Stmts[1].(*ast.ExprStmt).X.(*ast.CallExpr)
	if c1.Name != "p.shift" {
		t.Errorf("dotted call: %q", c1.Name)
	}
}

func TestDelayedActivation(t *testing.T) {
	src := `OPERATION m { ACTIVATION { a, b; c; d } }`
	d := mustParse(t, src)
	as := d.Operations[0].Sections[0].(*ast.ActivationSec)
	delays := []int{}
	for _, it := range as.Items {
		delays = append(delays, it.(*ast.ActRef).Delay)
	}
	want := []int{0, 0, 1, 2}
	for i := range want {
		if delays[i] != want[i] {
			t.Errorf("item %d delay = %d, want %d", i, delays[i], want[i])
		}
	}
}

func TestAliasResourceDecl(t *testing.T) {
	src := `
RESOURCE {
  REGISTER bit[48] accu;
  REGISTER bit[32] accu_hi ALIAS accu[47..16];
}
`
	d := mustParse(t, src)
	a := d.Resources[1]
	if !a.IsAlias || a.AliasOf != "accu" || a.AliasHi != 47 || a.AliasLo != 16 {
		t.Errorf("alias: %+v", a)
	}
}

func TestWaitStates(t *testing.T) {
	src := `RESOURCE { DATA_MEMORY int m[256] WAIT 2; }`
	d := mustParse(t, src)
	if d.Resources[0].Wait != 2 {
		t.Errorf("wait = %d", d.Resources[0].Wait)
	}
}

func TestParseErrorsRecover(t *testing.T) {
	src := `
OPERATION broken { CODING { ??? } }
OPERATION fine { CODING { 0b01 } }
`
	d, errs := Parse(src, "t")
	if len(errs) == 0 {
		t.Fatal("expected errors")
	}
	// Recovery should still find the second operation.
	found := false
	for _, op := range d.Operations {
		if op.Name == "fine" {
			found = true
		}
	}
	if !found {
		t.Error("parser did not recover to parse the second operation")
	}
}

func TestParseErrorMessagesHavePositions(t *testing.T) {
	_, errs := Parse("OPERATION x { CODING { $ } }", "file.lisa")
	if len(errs) == 0 {
		t.Fatal("expected error")
	}
	if !strings.Contains(errs[0].Error(), "file.lisa:") {
		t.Errorf("error lacks position: %v", errs[0])
	}
}

func TestCodingPatternReplication(t *testing.T) {
	src := `OPERATION n { CODING { 0bx[16] 0b0[4] } }`
	d := mustParse(t, src)
	cs := d.Operations[0].Sections[0].(*ast.CodingSec)
	p0 := cs.Elems[0].(*ast.CodingPattern)
	if len(p0.Bits) != 16 || strings.Trim(p0.Bits, "x") != "" {
		t.Errorf("replicated pattern: %q", p0.Bits)
	}
	p1 := cs.Elems[1].(*ast.CodingPattern)
	if p1.Bits != "0000" {
		t.Errorf("replicated zero pattern: %q", p1.Bits)
	}
}

func TestEmptyDescription(t *testing.T) {
	d := mustParse(t, "  // nothing\n")
	if len(d.Operations)+len(d.Resources)+len(d.Pipelines) != 0 {
		t.Error("expected empty description")
	}
}
