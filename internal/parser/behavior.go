package parser

import (
	"strings"

	"golisa/internal/ast"
	"golisa/internal/lexer"
)

// --- behavior statements ------------------------------------------------------

// parseBlock parses a braced statement list.
func (p *Parser) parseBlock() *ast.Block {
	open := p.expectPunct("{")
	b := &ast.Block{Pos: open.Pos}
	for !p.cur().Is("}") {
		if p.cur().Kind == lexer.EOF {
			p.fail(p.cur(), "unterminated block")
		}
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.next() // }
	return b
}

func (p *Parser) parseStmt() ast.Stmt {
	t := p.cur()
	switch {
	case t.Is("{"):
		return p.parseBlock()
	case t.Is(";"):
		p.next()
		return &ast.EmptyStmt{Pos: t.Pos}
	case t.IsIdent("if"):
		p.next()
		p.expectPunct("(")
		cond := p.parseExpr()
		p.expectPunct(")")
		then := p.parseStmt()
		node := &ast.IfStmt{Pos: t.Pos, Cond: cond, Then: then}
		if p.acceptIdent("else") {
			node.Else = p.parseStmt()
		}
		return node
	case t.IsIdent("while"):
		p.next()
		p.expectPunct("(")
		cond := p.parseExpr()
		p.expectPunct(")")
		return &ast.WhileStmt{Pos: t.Pos, Cond: cond, Body: p.parseStmt()}
	case t.IsIdent("do"):
		p.next()
		body := p.parseStmt()
		if !p.acceptIdent("while") {
			p.fail(p.cur(), "expected 'while' after do body")
		}
		p.expectPunct("(")
		cond := p.parseExpr()
		p.expectPunct(")")
		p.acceptPunct(";")
		return &ast.DoWhileStmt{Pos: t.Pos, Body: body, Cond: cond}
	case t.IsIdent("for"):
		p.next()
		p.expectPunct("(")
		node := &ast.ForStmt{Pos: t.Pos}
		if !p.cur().Is(";") {
			node.Init = p.parseSimpleStmt()
		}
		p.expectPunct(";")
		if !p.cur().Is(";") {
			node.Cond = p.parseExpr()
		}
		p.expectPunct(";")
		if !p.cur().Is(")") {
			node.Post = p.parseSimpleStmt()
		}
		p.expectPunct(")")
		node.Body = p.parseStmt()
		return node
	case t.IsIdent("switch"):
		return p.parseSwitchStmt()
	case t.IsIdent("break"):
		p.next()
		p.acceptPunct(";")
		return &ast.BreakStmt{Pos: t.Pos}
	case t.IsIdent("continue"):
		p.next()
		p.acceptPunct(";")
		return &ast.ContinueStmt{Pos: t.Pos}
	case t.IsIdent("return"):
		p.next()
		node := &ast.ReturnStmt{Pos: t.Pos}
		if !p.cur().Is(";") && !p.cur().Is("}") {
			node.X = p.parseExpr()
		}
		p.acceptPunct(";")
		return node
	default:
		s := p.parseSimpleStmt()
		p.acceptPunct(";")
		return s
	}
}

// parseSimpleStmt parses a declaration, assignment, inc/dec or expression
// statement (no trailing semicolon).
func (p *Parser) parseSimpleStmt() ast.Stmt {
	t := p.cur()
	// Declaration? A type keyword starts one — except when the identifier is
	// used as an expression (e.g. a resource named "bit" would be a modelling
	// error anyway; the type keywords are reserved in behavior code).
	if t.Kind == lexer.IDENT {
		switch t.Text {
		case "int", "long", "unsigned", "bit", "bool":
			ty, _ := p.parseType()
			name := p.expectIdent()
			d := &ast.DeclStmt{Pos: t.Pos, Type: ty, Name: name.Text}
			if p.acceptPunct("=") {
				d.Init = p.parseExpr()
			}
			return d
		}
	}
	x := p.parseExpr()
	cur := p.cur()
	switch {
	case cur.Is("++") || cur.Is("--"):
		p.next()
		return &ast.IncDecStmt{Pos: cur.Pos, X: x, Op: cur.Text}
	case cur.Kind == lexer.PUNCT && isAssignOp(cur.Text):
		p.next()
		rhs := p.parseExpr()
		return &ast.AssignStmt{Pos: cur.Pos, LHS: x, Op: cur.Text, RHS: rhs}
	default:
		return &ast.ExprStmt{Pos: t.Pos, X: x}
	}
}

func isAssignOp(s string) bool {
	switch s {
	case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
		return true
	}
	return false
}

func (p *Parser) parseSwitchStmt() ast.Stmt {
	t := p.next() // switch
	p.expectPunct("(")
	tag := p.parseExpr()
	p.expectPunct(")")
	p.expectPunct("{")
	node := &ast.SwitchStmt{Pos: t.Pos, Tag: tag}
	for !p.cur().Is("}") {
		if p.cur().Kind == lexer.EOF {
			p.fail(p.cur(), "unterminated switch")
		}
		var c ast.SwitchCase
		switch {
		case p.acceptIdent("case"):
			c.Vals = append(c.Vals, p.parseExpr())
			for p.acceptPunct(",") {
				c.Vals = append(c.Vals, p.parseExpr())
			}
		case p.acceptIdent("default"):
			c.Default = true
		default:
			p.fail(p.cur(), "expected case or default in switch, found %s", p.cur())
		}
		p.expectPunct(":")
		for !p.cur().IsIdent("case") && !p.cur().IsIdent("default") && !p.cur().Is("}") {
			if p.cur().IsIdent("break") {
				p.next()
				p.acceptPunct(";")
				break
			}
			c.Stmts = append(c.Stmts, p.parseStmt())
		}
		node.Cases = append(node.Cases, c)
	}
	p.next() // }
	return node
}

// --- behavior expressions -----------------------------------------------------

// Binary operator precedence, C-style; higher binds tighter.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) parseExpr() ast.Expr { return p.parseCond() }

func (p *Parser) parseCond() ast.Expr {
	c := p.parseBinary(1)
	if p.cur().Is("?") {
		q := p.next()
		t := p.parseExpr()
		p.expectPunct(":")
		f := p.parseCond()
		return &ast.CondExpr{Pos: q.Pos, C: c, T: t, F: f}
	}
	return c
}

func (p *Parser) parseBinary(minPrec int) ast.Expr {
	left := p.parseUnary()
	for {
		t := p.cur()
		if t.Kind != lexer.PUNCT {
			return left
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return left
		}
		p.next()
		right := p.parseBinary(prec + 1)
		left = &ast.BinaryExpr{Pos: t.Pos, Op: t.Text, L: left, R: right}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	t := p.cur()
	if t.Is("-") || t.Is("+") || t.Is("!") || t.Is("~") {
		p.next()
		return &ast.UnaryExpr{Pos: t.Pos, Op: t.Text, X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		t := p.cur()
		switch {
		case t.Is("["):
			p.next()
			i := p.parseExpr()
			if p.acceptPunct("..") {
				// bit-slice x[hi..lo], mirroring the alias range syntax
				lo := p.parseExpr()
				p.expectPunct("]")
				x = &ast.BitsExpr{Pos: t.Pos, X: x, Hi: i, Lo: lo}
				continue
			}
			p.expectPunct("]")
			x = &ast.IndexExpr{Pos: t.Pos, X: x, I: i}
		case t.Is("."):
			// dotted call path: pipe.stage.op(...) — only valid when it ends
			// in a call.
			id, ok := x.(*ast.Ident)
			if !ok {
				p.fail(t, "'.' selector is only valid on identifiers")
			}
			parts := []string{id.Name}
			for p.acceptPunct(".") {
				parts = append(parts, p.expectIdent().Text)
			}
			if !p.cur().Is("(") {
				p.fail(p.cur(), "dotted name %s must be a call", strings.Join(parts, "."))
			}
			x = p.parseCallArgs(strings.Join(parts, "."), t.Pos)
		case t.Is("("):
			id, ok := x.(*ast.Ident)
			if !ok {
				p.fail(t, "call of non-identifier expression")
			}
			x = p.parseCallArgs(id.Name, t.Pos)
		default:
			return x
		}
	}
}

func (p *Parser) parseCallArgs(name string, pos lexer.Pos) ast.Expr {
	p.expectPunct("(")
	call := &ast.CallExpr{Pos: pos, Name: name}
	for !p.cur().Is(")") {
		call.Args = append(call.Args, p.parseExpr())
		if !p.acceptPunct(",") {
			break
		}
	}
	p.expectPunct(")")
	return call
}

func (p *Parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case lexer.NUMBER:
		p.next()
		return &ast.NumLit{Pos: t.Pos, Val: t.Val}
	case lexer.BINPAT:
		if strings.ContainsRune(t.Text, 'x') {
			p.fail(t, "binary pattern with don't-care bits is not a value")
		}
		n := p.expectNumber()
		return &ast.NumLit{Pos: t.Pos, Val: n.Val}
	case lexer.STRING:
		p.next()
		return &ast.StrLit{Pos: t.Pos, Val: t.Text}
	case lexer.IDENT:
		p.next()
		return &ast.Ident{Pos: t.Pos, Name: t.Text}
	default:
		if t.Is("(") {
			p.next()
			x := p.parseExpr()
			p.expectPunct(")")
			return x
		}
		p.fail(t, "expected expression, found %s", t)
		return nil
	}
}
