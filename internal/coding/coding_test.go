package coding

import (
	"strings"
	"testing"
	"testing/quick"

	"golisa/internal/ast"
	"golisa/internal/bitvec"
	"golisa/internal/model"
	"golisa/internal/parser"
	"golisa/internal/sema"
)

func build(t *testing.T, src string) *model.Model {
	t.Helper()
	d, perrs := parser.Parse(src, "test.lisa")
	for _, e := range perrs {
		t.Fatalf("parse: %v", e)
	}
	m, errs := sema.Build("test", d)
	for _, e := range errs {
		t.Fatalf("sema: %v", e)
	}
	return m
}

// A register-file operand plus a two-instruction ISA, close to the paper's
// Example 4/6 shape: 1 side bit + 4 index bits per operand.
const miniISA = `
RESOURCE {
  CONTROL_REGISTER bit[32] ir;
}
OPERATION decode {
  DECLARE { GROUP Instruction = { add_d; sub_d }; }
  CODING { ir == Instruction }
}
OPERATION add_d {
  DECLARE { GROUP Dest, Src1, Src2 = { register }; }
  CODING { Dest Src2 Src1 0b0000010000 0b1 0b100000 }
  SYNTAX { "ADD" ".D" Src1 "," Src2 "," Dest }
}
OPERATION sub_d {
  DECLARE { GROUP Dest, Src1, Src2 = { register }; }
  CODING { Dest Src2 Src1 0b0000010001 0b1 0b100000 }
  SYNTAX { "SUB" ".D" Src1 "," Src2 "," Dest }
}
OPERATION register {
  DECLARE {
    GROUP Side = { side1; side2 };
    LABEL index;
  }
  CODING { Side index:0bx[4] }
  SWITCH (Side) {
    CASE side1: { SYNTAX { "A" index:#u } EXPRESSION { A[index] } }
    CASE side2: { SYNTAX { "B" index:#u } EXPRESSION { B[index] } }
  }
}
OPERATION side1 { CODING { 0b0 } SYNTAX { "" } }
OPERATION side2 { CODING { 0b1 } SYNTAX { "" } }
`

// encodeADD builds the 32-bit word for ADD.D with the given register fields:
// Dest(5) Src2(5) Src1(5) 0000010000 1 100000.
func encodeADD(dest, src2, src1 uint64, opc uint64) uint64 {
	w := dest<<27 | src2<<22 | src1<<17 | opc<<7 | 1<<6 | 0x20
	return w
}

func TestDecodeRootSelectsOperation(t *testing.T) {
	m := build(t, miniISA)
	d := NewDecoder(m)
	root := m.Ops["decode"]

	// ADD.D A3, B4, A15: Src1=A3(0 0011), Src2=B4(1 0100), Dest=A15(0 1111)
	word := encodeADD(0b01111, 0b10100, 0b00011, 0b0000010000)
	in, err := d.DecodeRoot(root, bitvec.New(word, 32))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	insn := in.Bindings["Instruction"]
	if insn == nil || insn.Op.Name != "add_d" {
		t.Fatalf("selected %v, want add_d", insn)
	}
	dest := insn.Bindings["Dest"]
	if dest.Op.Name != "register" || dest.Labels["index"].Uint() != 15 {
		t.Errorf("dest: %v", dest)
	}
	if dest.Bindings["Side"].Op.Name != "side1" {
		t.Errorf("dest side: %v", dest.Bindings["Side"].Op.Name)
	}
	src2 := insn.Bindings["Src2"]
	if src2.Bindings["Side"].Op.Name != "side2" || src2.Labels["index"].Uint() != 4 {
		t.Errorf("src2: %v", src2)
	}
	// Variant resolution must have picked the side-specific variant.
	if dest.Variant == nil || dest.Variant.Expression == nil {
		t.Fatal("dest variant not resolved")
	}
}

func TestDecodeSelectsSecondMember(t *testing.T) {
	m := build(t, miniISA)
	d := NewDecoder(m)
	word := encodeADD(1, 2, 3, 0b0000010001) // SUB opcode
	in, err := d.DecodeRoot(m.Ops["decode"], bitvec.New(word, 32))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got := in.Bindings["Instruction"].Op.Name; got != "sub_d" {
		t.Errorf("selected %s, want sub_d", got)
	}
}

func TestDecodeNoMatch(t *testing.T) {
	m := build(t, miniISA)
	d := NewDecoder(m)
	// wrong fixed opcode bits
	word := encodeADD(1, 2, 3, 0b1111111111)
	_, err := d.DecodeRoot(m.Ops["decode"], bitvec.New(word, 32))
	if err == nil {
		t.Fatal("expected decode failure")
	}
	if !strings.Contains(err.Error(), "no member matches") {
		t.Errorf("error: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := build(t, miniISA)
	d := NewDecoder(m)
	e := NewEncoder(m)
	root := m.Ops["decode"]

	f := func(dest8, src18, src28 uint8, sub bool) bool {
		dest := uint64(dest8) % 32
		src1 := uint64(src18) % 32
		src2 := uint64(src28) % 32
		opc := uint64(0b0000010000)
		if sub {
			opc = 0b0000010001
		}
		word := encodeADD(dest, src2, src1, opc)
		in, err := d.DecodeRoot(root, bitvec.New(word, 32))
		if err != nil {
			return false
		}
		back, err := e.Encode(in.Bindings["Instruction"])
		if err != nil {
			return false
		}
		return back.Uint() == word && back.Width() == 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeMissingLabel(t *testing.T) {
	m := build(t, miniISA)
	e := NewEncoder(m)
	in := model.NewInstance(m.Ops["register"])
	in.Bindings["Side"] = model.NewInstance(m.Ops["side1"])
	_, err := e.Encode(in)
	if err == nil || !strings.Contains(err.Error(), "label index unbound") {
		t.Errorf("expected unbound-label error, got %v", err)
	}
}

func TestEncodeMissingBinding(t *testing.T) {
	m := build(t, miniISA)
	e := NewEncoder(m)
	in := model.NewInstance(m.Ops["add_d"])
	_, err := e.Encode(in)
	if err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("expected unbound-reference error, got %v", err)
	}
}

func TestDontCareBitsDecodeAndEncodeAsZero(t *testing.T) {
	src := `
RESOURCE { CONTROL_REGISTER bit[8] ir; }
OPERATION decode {
  DECLARE { GROUP I = { nop }; }
  CODING { ir == I }
}
OPERATION nop { CODING { 0b1010 0bx[4] } SYNTAX { "NOP" } }
`
	m := build(t, src)
	d := NewDecoder(m)
	e := NewEncoder(m)
	// any low nibble matches
	for _, low := range []uint64{0x0, 0x5, 0xf} {
		in, err := d.DecodeRoot(m.Ops["decode"], bitvec.New(0xa0|low, 8))
		if err != nil {
			t.Fatalf("decode %#x: %v", 0xa0|low, err)
		}
		enc, err := e.Encode(in.Bindings["I"])
		if err != nil {
			t.Fatal(err)
		}
		if enc.Uint() != 0xa0 {
			t.Errorf("don't-care should encode as 0: %#x", enc.Uint())
		}
	}
}

func TestFieldWithFixedBits(t *testing.T) {
	src := `
RESOURCE { CONTROL_REGISTER bit[8] ir; }
OPERATION decode {
  DECLARE { GROUP I = { op }; }
  CODING { ir == I }
}
OPERATION op {
  DECLARE { LABEL f; }
  CODING { 0b01 f:0b1xxxxx }
  SYNTAX { "OP" f:#u }
}
`
	m := build(t, src)
	d := NewDecoder(m)
	// top bit of field must be 1
	if _, err := d.DecodeRoot(m.Ops["decode"], bitvec.New(0b01011111, 8)); err == nil {
		t.Error("fixed field bit violation should fail decode")
	}
	in, err := d.DecodeRoot(m.Ops["decode"], bitvec.New(0b01100101, 8))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	f := in.Bindings["I"].Labels["f"]
	if f.Uint() != 0b100101 {
		t.Errorf("field value = %#b", f.Uint())
	}
}

func TestDecodeNonRootDirect(t *testing.T) {
	m := build(t, miniISA)
	d := NewDecoder(m)
	in, err := d.Decode(m.Ops["register"], bitvec.New(0b10111, 5))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if in.Bindings["Side"].Op.Name != "side2" || in.Labels["index"].Uint() != 7 {
		t.Errorf("register decode: %v", in)
	}
}

func TestDecodeRootOnNonRootFails(t *testing.T) {
	m := build(t, miniISA)
	d := NewDecoder(m)
	_, err := d.DecodeRoot(m.Ops["add_d"], bitvec.New(0, 32))
	if err == nil || !strings.Contains(err.Error(), "not a coding root") {
		t.Errorf("expected not-a-root error, got %v", err)
	}
}

func TestAliasDecodePrefersFirstMember(t *testing.T) {
	// Two operations with the same coding: declaration order decides.
	src := `
RESOURCE { CONTROL_REGISTER bit[4] ir; }
OPERATION decode {
  DECLARE { GROUP I = { real; aka }; }
  CODING { ir == I }
}
OPERATION real { CODING { 0b0001 } SYNTAX { "REAL" } }
OPERATION aka ALIAS { CODING { 0b0001 } SYNTAX { "AKA" } }
`
	m := build(t, src)
	d := NewDecoder(m)
	in, err := d.DecodeRoot(m.Ops["decode"], bitvec.New(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Bindings["I"].Op.Name; got != "real" {
		t.Errorf("decoded %s, want real (declaration order)", got)
	}
}

func TestPatternHelpers(t *testing.T) {
	if !patternMatches("x1x0", bitvec.New(0b0100, 4)) {
		t.Error("x1x0 should match 0100")
	}
	if patternMatches("x1x0", bitvec.New(0b0001, 4)) {
		t.Error("x1x0 should not match 0001")
	}
	if patternValue("1x01") != 0b1001 {
		t.Errorf("patternValue: %#b", patternValue("1x01"))
	}
	if patternCareMask("1x01") != 0b1011 {
		t.Errorf("careMask: %#b", patternCareMask("1x01"))
	}
}

func TestDecodeRejectsOver64BitCoding(t *testing.T) {
	// Hand-built model: sema rejects >64-bit codings before they reach the
	// decoder, so this guards against models assembled programmatically.
	m := model.NewModel("fat")
	res := &model.Resource{Name: "insn", Width: 64}
	if err := m.AddResource(res); err != nil {
		t.Fatal(err)
	}
	root := &model.Operation{
		Name:         "root",
		IsCodingRoot: true,
		RootResource: res,
		Variants: []*model.Variant{{
			Coding: &ast.CodingSec{
				CompareTo: "insn",
				Elems:     []ast.CodingElem{&ast.CodingPattern{Bits: strings.Repeat("x", 80)}},
			},
		}},
	}
	if err := m.AddOperation(root); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(m)
	_, err := d.DecodeRoot(root, bitvec.New(0, 64))
	if err == nil || !strings.Contains(err.Error(), "exceeds the 64-bit instruction word limit") {
		t.Fatalf("DecodeRoot error = %v, want 64-bit word limit error", err)
	}

	fat := &model.Operation{
		Name:        "fatop",
		CodingWidth: 80,
		Variants: []*model.Variant{{
			Coding: &ast.CodingSec{
				Elems: []ast.CodingElem{&ast.CodingPattern{Bits: strings.Repeat("x", 80)}},
			},
		}},
	}
	if err := m.AddOperation(fat); err != nil {
		t.Fatal(err)
	}
	_, err = d.Decode(fat, bitvec.New(0, 64))
	if err == nil || !strings.Contains(err.Error(), "exceeds the 64-bit instruction word limit") {
		t.Fatalf("Decode error = %v, want 64-bit word limit error", err)
	}
}
