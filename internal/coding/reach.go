package coding

import (
	"sort"

	"golisa/internal/ast"
	"golisa/internal/model"
)

// Unreachable reports one coding-group member no instruction word can
// select: an earlier member of the same group matches every word the
// later one would, and the paper's first-match selection rule
// (decodeGroup) never reaches it. Such encodings are dead space of the
// coding tree and are excluded from coverage denominators.
type Unreachable struct {
	Op         string `json:"op"`          // the shadowed member
	Group      string `json:"group"`       // group it can never be selected from
	ShadowedBy string `json:"shadowed_by"` // earlier member that wins every word
	Pos        string `json:"pos,omitempty"`
}

// memberMask is the statically known bit constraint of one group member's
// coding: word w can match the member only if w&mask == value. pure marks
// codings made of patterns and fields only — for those the constraint is
// exact (matching is equivalent to w&mask == value), for codings with
// references it is merely necessary.
type memberMask struct {
	width int
	mask  uint64
	value uint64
	pure  bool
	ok    bool
}

// FindUnreachable scans every coding group of the model for members
// shadowed by an earlier member: E shadows M when E is pure and E's
// constraint bits are a subset of M's fixed bits with agreeing values —
// then every word satisfying M's fixed bits already matches E, and
// first-match selection returns E. The result is deterministic:
// declaration order of the owning operation, group name, member order.
func FindUnreachable(m *model.Model) []Unreachable {
	var out []Unreachable
	for _, op := range m.OpList {
		names := make([]string, 0, len(op.Groups))
		for name, g := range op.Groups {
			if g.Owner == op {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			out = append(out, groupUnreachable(m, op.Groups[name])...)
		}
	}
	return out
}

func groupUnreachable(m *model.Model, g *model.Group) []Unreachable {
	masks := make([]memberMask, len(g.Members))
	for i, mem := range g.Members {
		masks[i] = maskOf(m, mem)
	}
	var out []Unreachable
	for j := 1; j < len(g.Members); j++ {
		mj := masks[j]
		if !mj.ok {
			continue
		}
		for i := 0; i < j; i++ {
			mi := masks[i]
			if !mi.ok || !mi.pure || mi.width != mj.width {
				continue
			}
			if mi.mask&^mj.mask != 0 || mj.value&mi.mask != mi.value {
				continue
			}
			u := Unreachable{
				Op:         g.Members[j].Name,
				Group:      g.Name,
				ShadowedBy: g.Members[i].Name,
			}
			if src := g.Members[j].Src; src != nil {
				u.Pos = src.Pos.String()
			}
			out = append(out, u)
			break
		}
	}
	return out
}

// maskOf folds a member's coding elements MSB-first into one fixed-bit
// constraint. References contribute width but no constraint (their bits
// may take many values), which makes the member impure.
func maskOf(m *model.Model, op *model.Operation) memberMask {
	sec := codingOf(op)
	if sec == nil || op.CodingWidth <= 0 || op.CodingWidth > 64 {
		return memberMask{}
	}
	r := memberMask{pure: true, ok: true}
	emit := func(value, mask uint64, w int) {
		r.value = r.value<<uint(w) | value
		r.mask = r.mask<<uint(w) | mask
		r.width += w
	}
	for _, e := range sec.Elems {
		switch el := e.(type) {
		case *ast.CodingPattern:
			emit(patternValue(el.Bits), patternCareMask(el.Bits), len(el.Bits))
		case *ast.CodingField:
			emit(patternValue(el.Bits), patternCareMask(el.Bits), len(el.Bits))
		case *ast.CodingRef:
			w := 0
			if g, ok := op.Groups[el.Name]; ok {
				w = groupWidth(g)
			} else if ref := m.Ops[el.Name]; ref != nil {
				w = ref.CodingWidth
			}
			if w == 0 {
				return memberMask{}
			}
			emit(0, 0, w)
			r.pure = false
		}
	}
	if r.width != op.CodingWidth {
		return memberMask{}
	}
	return r
}

// UnreachableSet names the operations that are globally dead in the
// coding tree: every group appearance is shadowed and no coding refers
// to the operation directly by name. Operations outside the coding tree
// are not reported — absence from every group is not shadowing.
func UnreachableSet(m *model.Model) map[string]bool {
	shadowed := map[string]int{} // op -> shadowed appearances
	appears := map[string]int{}  // op -> group appearances
	for _, op := range m.OpList {
		for _, g := range op.Groups {
			if g.Owner != op {
				continue
			}
			for _, mem := range g.Members {
				appears[mem.Name]++
			}
		}
	}
	for _, u := range FindUnreachable(m) {
		shadowed[u.Op]++
	}
	direct := map[string]bool{} // named directly by some CodingRef
	for _, op := range m.OpList {
		for _, v := range op.Variants {
			if v.Coding == nil {
				continue
			}
			for _, e := range v.Coding.Elems {
				if ref, ok := e.(*ast.CodingRef); ok {
					if _, isGroup := op.Groups[ref.Name]; !isGroup {
						direct[ref.Name] = true
					}
				}
			}
		}
	}
	out := map[string]bool{}
	for name, n := range appears {
		if shadowed[name] >= n && !direct[name] {
			out[name] = true
		}
	}
	return out
}
