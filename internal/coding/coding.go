// Package coding implements instruction decoding and encoding from LISA
// CODING sections: matching binary images against the coding tree to build
// bound operation instances (decode), and regenerating instruction words
// from instances (encode). These are the two directions the paper assigns
// to the instruction-set model (§3.2.1).
package coding

import (
	"fmt"

	"golisa/internal/ast"
	"golisa/internal/bitvec"
	"golisa/internal/model"
)

// Decoder matches instruction words against a model's coding trees.
type Decoder struct {
	m *model.Model
}

// NewDecoder creates a decoder over the model.
func NewDecoder(m *model.Model) *Decoder { return &Decoder{m: m} }

// DecodeRoot decodes word against the coding root of root (an operation
// whose CODING compares a resource to a group, paper Example 3). It returns
// a fully bound instance tree of root.
func (d *Decoder) DecodeRoot(root *model.Operation, word bitvec.Value) (*model.Instance, error) {
	if !root.IsCodingRoot {
		return nil, fmt.Errorf("operation %s is not a coding root", root.Name)
	}
	var sec *ast.CodingSec
	for _, v := range root.Variants {
		if v.Coding != nil && v.Coding.CompareTo != "" {
			sec = v.Coding
			break
		}
	}
	if sec == nil {
		return nil, fmt.Errorf("coding root %s has no root coding section", root.Name)
	}
	in := model.NewInstance(root)
	w := d.elemsWidth(root, sec.Elems)
	// Wider codings are rejected at sema time; this guard keeps a
	// hand-built model from silently truncating words (Resize clamps to
	// bitvec.MaxWidth) and colliding in word-keyed decode caches.
	if w > bitvec.MaxWidth {
		return nil, fmt.Errorf("coding root %s: width %d exceeds the %d-bit instruction word limit",
			root.Name, w, bitvec.MaxWidth)
	}
	bits := word.Resize(w)
	rest, err := d.matchElems(root, in, sec.Elems, bits, w)
	if err != nil {
		return nil, err
	}
	if rest != 0 {
		return nil, fmt.Errorf("coding root %s: %d bits left unmatched", root.Name, rest)
	}
	if err := in.ResolveVariant(); err != nil {
		return nil, err
	}
	return in, nil
}

// Decode decodes word against a non-root operation's coding (useful for
// testing sub-trees and for the assembler's consistency checks).
func (d *Decoder) Decode(op *model.Operation, word bitvec.Value) (*model.Instance, error) {
	return d.decodeOp(op, word.Resize(op.CodingWidth))
}

// codingOf returns the operation's (non-root) coding section, or nil.
func codingOf(op *model.Operation) *ast.CodingSec {
	for _, v := range op.Variants {
		if v.Coding != nil && v.Coding.CompareTo == "" {
			return v.Coding
		}
	}
	return nil
}

// decodeOp matches bits (exactly op.CodingWidth wide) against op's coding.
func (d *Decoder) decodeOp(op *model.Operation, bits bitvec.Value) (*model.Instance, error) {
	sec := codingOf(op)
	if sec == nil {
		return nil, fmt.Errorf("operation %s has no coding", op.Name)
	}
	if op.CodingWidth > bitvec.MaxWidth {
		return nil, fmt.Errorf("operation %s: coding width %d exceeds the %d-bit instruction word limit",
			op.Name, op.CodingWidth, bitvec.MaxWidth)
	}
	in := model.NewInstance(op)
	rest, err := d.matchElems(op, in, sec.Elems, bits, op.CodingWidth)
	if err != nil {
		return nil, err
	}
	if rest != 0 {
		return nil, fmt.Errorf("operation %s: %d bits left unmatched", op.Name, rest)
	}
	if err := in.ResolveVariant(); err != nil {
		return nil, err
	}
	return in, nil
}

// matchElems consumes elements MSB-first from bits, whose low `width` bits
// hold the region to match. It returns the number of unconsumed bits.
func (d *Decoder) matchElems(op *model.Operation, in *model.Instance, elems []ast.CodingElem, bits bitvec.Value, width int) (int, error) {
	cursor := width
	take := func(n int) (bitvec.Value, error) {
		if n > cursor {
			return bitvec.Value{}, fmt.Errorf("operation %s: coding needs %d bits, only %d left", op.Name, n, cursor)
		}
		v := bits.Slice(cursor-1, cursor-n)
		cursor -= n
		return v, nil
	}
	for _, e := range elems {
		switch el := e.(type) {
		case *ast.CodingPattern:
			v, err := take(len(el.Bits))
			if err != nil {
				return cursor, err
			}
			if !patternMatches(el.Bits, v) {
				return cursor, fmt.Errorf("operation %s: pattern %s does not match %s", op.Name, el.Bits, v.BinString())
			}
		case *ast.CodingField:
			v, err := take(len(el.Bits))
			if err != nil {
				return cursor, err
			}
			if !patternMatches(el.Bits, v) {
				return cursor, fmt.Errorf("operation %s: field %s fixed bits do not match", op.Name, el.Label)
			}
			in.Labels[el.Label] = v
		case *ast.CodingRef:
			if g, ok := op.Groups[el.Name]; ok {
				gw := groupWidth(g)
				v, err := take(gw)
				if err != nil {
					return cursor, err
				}
				child, err := d.decodeGroup(g, v)
				if err != nil {
					return cursor, fmt.Errorf("operation %s, group %s: %w", op.Name, el.Name, err)
				}
				in.Bindings[el.Name] = child
				continue
			}
			ref := d.m.Ops[el.Name]
			if ref == nil {
				return cursor, fmt.Errorf("operation %s: unknown coding reference %s", op.Name, el.Name)
			}
			v, err := take(ref.CodingWidth)
			if err != nil {
				return cursor, err
			}
			child, err := d.decodeOp(ref, v)
			if err != nil {
				return cursor, err
			}
			in.Bindings[el.Name] = child
		}
	}
	return cursor, nil
}

// decodeGroup tries the group's members in declaration order and returns the
// first whose coding matches (the paper's selection rule).
func (d *Decoder) decodeGroup(g *model.Group, bits bitvec.Value) (*model.Instance, error) {
	var firstErr error
	for _, mem := range g.Members {
		in, err := d.decodeOp(mem, bits)
		if err == nil {
			return in, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("group has no members")
	}
	return nil, fmt.Errorf("no member matches %s: %w", bits.BinString(), firstErr)
}

func groupWidth(g *model.Group) int {
	for _, mem := range g.Members {
		if mem.CodingWidth > 0 {
			return mem.CodingWidth
		}
	}
	return 0
}

func (d *Decoder) elemsWidth(op *model.Operation, elems []ast.CodingElem) int {
	w := 0
	for _, e := range elems {
		switch el := e.(type) {
		case *ast.CodingPattern:
			w += len(el.Bits)
		case *ast.CodingField:
			w += len(el.Bits)
		case *ast.CodingRef:
			if g, ok := op.Groups[el.Name]; ok {
				w += groupWidth(g)
			} else if ref := d.m.Ops[el.Name]; ref != nil {
				w += ref.CodingWidth
			}
		}
	}
	return w
}

// patternMatches checks value v against an MSB-first pattern of 0/1/x.
func patternMatches(pattern string, v bitvec.Value) bool {
	n := len(pattern)
	for i := 0; i < n; i++ {
		switch pattern[i] {
		case 'x':
			continue
		case '0':
			if v.Bit(n-1-i) != 0 {
				return false
			}
		case '1':
			if v.Bit(n-1-i) != 1 {
				return false
			}
		}
	}
	return true
}

// --- encoding ----------------------------------------------------------------

// Encoder regenerates instruction words from bound instances.
type Encoder struct {
	m *model.Model
}

// NewEncoder creates an encoder over the model.
func NewEncoder(m *model.Model) *Encoder { return &Encoder{m: m} }

// Encode produces the binary image of a bound instance. Don't-care bits of
// plain patterns encode as 0.
func (e *Encoder) Encode(in *model.Instance) (bitvec.Value, error) {
	op := in.Op
	sec := codingOf(op)
	if sec == nil {
		return bitvec.Value{}, fmt.Errorf("operation %s has no coding", op.Name)
	}
	var bits uint64
	width := 0
	emit := func(v uint64, w int) {
		bits = bits<<uint(w) | (v & bitvec.Mask(w))
		width += w
	}
	for _, el := range sec.Elems {
		switch el := el.(type) {
		case *ast.CodingPattern:
			emit(patternValue(el.Bits), len(el.Bits))
		case *ast.CodingField:
			v, ok := in.Labels[el.Label]
			if !ok {
				return bitvec.Value{}, fmt.Errorf("operation %s: label %s unbound", op.Name, el.Label)
			}
			fixed := patternValue(el.Bits)
			mask := patternCareMask(el.Bits)
			emit((fixed&mask)|(v.Uint()&^mask), len(el.Bits))
		case *ast.CodingRef:
			child := in.Bindings[el.Name]
			if child == nil {
				return bitvec.Value{}, fmt.Errorf("operation %s: reference %s unbound", op.Name, el.Name)
			}
			cv, err := e.Encode(child)
			if err != nil {
				return bitvec.Value{}, err
			}
			emit(cv.Uint(), cv.Width())
		}
	}
	if width > 64 {
		return bitvec.Value{}, fmt.Errorf("operation %s: coding width %d exceeds 64", op.Name, width)
	}
	return bitvec.New(bits, width), nil
}

// patternValue returns the fixed bits of an MSB-first pattern ('x' as 0).
func patternValue(pattern string) uint64 {
	var v uint64
	for i := 0; i < len(pattern); i++ {
		v <<= 1
		if pattern[i] == '1' {
			v |= 1
		}
	}
	return v
}

// patternCareMask returns a mask with 1 in every fixed (non-x) position.
func patternCareMask(pattern string) uint64 {
	var m uint64
	for i := 0; i < len(pattern); i++ {
		m <<= 1
		if pattern[i] != 'x' {
			m |= 1
		}
	}
	return m
}
