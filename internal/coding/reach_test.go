package coding

import "testing"

// An ISA whose group hides two members: dup has exactly a1's coding, and
// narrow refines a1's fixed bits (every word matching narrow matched a1
// first). free has a disjoint opcode and stays reachable.
const shadowISA = `
RESOURCE {
  CONTROL_REGISTER bit[8] ir;
}
OPERATION decode {
  DECLARE { GROUP Instruction = { a1; dup; narrow; free }; }
  CODING { ir == Instruction }
}
OPERATION a1     { CODING { 0b00 0bx[6] }     SYNTAX { "A1" } }
OPERATION dup    { CODING { 0b00 0bx[6] }     SYNTAX { "DUP" } }
OPERATION narrow { CODING { 0b001000 0bx[2] } SYNTAX { "NARROW" } }
OPERATION free   { CODING { 0b01 0bx[6] }     SYNTAX { "FREE" } }
`

func TestFindUnreachableShadowing(t *testing.T) {
	m := build(t, shadowISA)
	got := FindUnreachable(m)
	if len(got) != 2 {
		t.Fatalf("FindUnreachable = %+v, want dup and narrow", got)
	}
	want := map[string]string{"dup": "a1", "narrow": "a1"}
	for _, u := range got {
		if u.Group != "Instruction" {
			t.Errorf("%s: group %q, want Instruction", u.Op, u.Group)
		}
		if by, ok := want[u.Op]; !ok || u.ShadowedBy != by {
			t.Errorf("unexpected entry %+v", u)
		}
		delete(want, u.Op)
		if u.Pos == "" {
			t.Errorf("%s: empty source position", u.Op)
		}
	}
	set := UnreachableSet(m)
	for _, name := range []string{"dup", "narrow"} {
		if !set[name] {
			t.Errorf("UnreachableSet misses %s", name)
		}
	}
	for _, name := range []string{"a1", "free", "decode"} {
		if set[name] {
			t.Errorf("UnreachableSet wrongly contains %s", name)
		}
	}
}

// A group member containing a group reference is impure: its match set
// depends on the nested decode, so it must never count as a shadower.
const impureISA = `
RESOURCE {
  CONTROL_REGISTER bit[8] ir;
}
OPERATION decode {
  DECLARE { GROUP Instruction = { wide; later }; }
  CODING { ir == Instruction }
}
OPERATION wide {
  DECLARE { GROUP Mode = { m0; m1 }; }
  CODING { Mode 0bx[6] }
  SYNTAX { "WIDE" }
}
OPERATION later { CODING { 0b01 0bx[6] } SYNTAX { "LATER" } }
OPERATION m0 { CODING { 0b00 } SYNTAX { "" } }
OPERATION m1 { CODING { 0b01 } SYNTAX { "" } }
`

func TestFindUnreachableImpureShadower(t *testing.T) {
	m := build(t, impureISA)
	if got := FindUnreachable(m); len(got) != 0 {
		t.Fatalf("impure member reported as shadower: %+v", got)
	}
}

func TestFindUnreachableMiniISAClean(t *testing.T) {
	m := build(t, miniISA)
	if got := FindUnreachable(m); len(got) != 0 {
		t.Fatalf("miniISA has no dead leaves, got %+v", got)
	}
	if set := UnreachableSet(m); len(set) != 0 {
		t.Fatalf("UnreachableSet = %v, want empty", set)
	}
}

// An operand shadowed inside its group but also referenced directly by
// another instruction's coding stays reachable through that direct path.
const directRefISA = `
RESOURCE {
  CONTROL_REGISTER bit[8] ir;
}
OPERATION decode {
  DECLARE { GROUP Instruction = { insn1; insn2 }; }
  CODING { ir == Instruction }
}
OPERATION insn1 {
  DECLARE { GROUP Opnd = { opnd_a; opnd_b }; }
  CODING { 0b0000 Opnd }
  SYNTAX { "I1" }
}
OPERATION insn2 {
  CODING { 0b0001 opnd_b }
  SYNTAX { "I2" }
}
OPERATION opnd_a { CODING { 0b00 0bx[2] } SYNTAX { "" } }
OPERATION opnd_b { CODING { 0b00 0bx[2] } SYNTAX { "" } }
`

func TestUnreachableSetDirectReference(t *testing.T) {
	m := build(t, directRefISA)
	got := FindUnreachable(m)
	if len(got) != 1 || got[0].Op != "opnd_b" || got[0].ShadowedBy != "opnd_a" {
		t.Fatalf("FindUnreachable = %+v, want opnd_b shadowed by opnd_a", got)
	}
	// The group appearance is dead, but insn2's direct reference keeps the
	// leaf alive, so the set (which feeds coverage denominators) omits it.
	if set := UnreachableSet(m); set["opnd_b"] {
		t.Fatal("opnd_b has a direct coding reference; it must stay in the denominators")
	}
}
