package core

import (
	"strings"
	"testing"

	"golisa/internal/sim"
)

func loadSimple16(t *testing.T) *Machine {
	t.Helper()
	m, err := LoadBuiltin("simple16")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runProgram(t *testing.T, m *Machine, src string, mode sim.Mode, maxSteps uint64) *sim.Simulator {
	t.Helper()
	s, _, err := m.AssembleAndLoad(src, mode)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(maxSteps); err != nil {
		t.Fatal(err)
	}
	if !s.Halted() {
		t.Fatal("program did not halt")
	}
	return s
}

func regA(t *testing.T, s *sim.Simulator, i uint64) int64 {
	t.Helper()
	v, err := s.Mem("A", i)
	if err != nil {
		t.Fatal(err)
	}
	return v.Int()
}

func regB(t *testing.T, s *sim.Simulator, i uint64) int64 {
	t.Helper()
	v, err := s.Mem("B", i)
	if err != nil {
		t.Fatal(err)
	}
	return v.Int()
}

func TestSimple16Arithmetic(t *testing.T) {
	m := loadSimple16(t)
	src := `
    LDI A1, 6
    LDI A2, 7
    NOP
    MPY A3, A1, A2     ; 42
    ADD B1, A1, A2     ; 13
    SUB B2, A2, A1     ; 1
    AND B3, A1, A2     ; 6
    OR  B4, A1, A2     ; 7
    XOR B5, A1, A2     ; 1
    HALT
`
	for _, mode := range []sim.Mode{sim.Interpretive, sim.Compiled, sim.CompiledPrebound} {
		t.Run(mode.String(), func(t *testing.T) {
			s := runProgram(t, m, src, mode, 1000)
			if got := regA(t, s, 3); got != 42 {
				t.Errorf("A3 = %d", got)
			}
			for i, want := range []int64{13, 1, 6, 7, 1} {
				if got := regB(t, s, uint64(i+1)); got != want {
					t.Errorf("B%d = %d, want %d", i+1, got, want)
				}
			}
		})
	}
}

func TestSimple16MACAccumulator(t *testing.T) {
	m := loadSimple16(t)
	src := `
    CLRACC
    LDI A1, 1000
    LDI A2, 2000
    NOP
    MAC A1, A2        ; accu += 2,000,000
    MAC A1, A2        ; accu += 2,000,000
    SAT B0            ; B0 = min(accu, 2^31-1) = 4,000,000
    HALT
`
	s := runProgram(t, m, src, sim.Compiled, 1000)
	if got := regB(t, s, 0); got != 4000000 {
		t.Errorf("B0 = %d, want 4000000", got)
	}
	accu, err := s.Scalar("accu")
	if err != nil {
		t.Fatal(err)
	}
	if accu.Int() != 4000000 {
		t.Errorf("accu = %d", accu.Int())
	}
	// The alias window accu_hi must show bits 39..8.
	hi, err := s.Scalar("accu_hi")
	if err != nil {
		t.Fatal(err)
	}
	if hi.Uint() != uint64(4000000)>>8 {
		t.Errorf("accu_hi = %#x", hi.Uint())
	}
}

func TestSimple16SaturationClamps(t *testing.T) {
	m := loadSimple16(t)
	src := `
    CLRACC
    LDI A1, 30000
    LDI A2, 30000
    NOP
    MAC A1, A2
    MAC A1, A2
    MAC A1, A2
    MAC A1, A2        ; accu = 3.6e9 > 2^31-1
    SAT B0
    HALT
`
	s := runProgram(t, m, src, sim.Interpretive, 1000)
	if got := regB(t, s, 0); got != 0x7fffffff {
		t.Errorf("B0 = %d, want saturated 2147483647", got)
	}
}

func TestSimple16BranchDelaySlots(t *testing.T) {
	// B executes in EX two cycles after fetch; the two instructions fetched
	// in between are delay slots and must execute.
	m := loadSimple16(t)
	src := `
        LDI A1, 1
        B skip
        LDI A2, 2     ; delay slot 1: executes
        LDI A3, 3     ; delay slot 2: executes
        LDI A4, 4     ; skipped
        LDI A5, 5     ; skipped
skip:   LDI A6, 6
        HALT
`
	s := runProgram(t, m, src, sim.Compiled, 1000)
	for i, want := range []int64{1, 2, 3, 0, 0, 6} {
		if got := regA(t, s, uint64(i+1)); got != want {
			t.Errorf("A%d = %d, want %d", i+1, got, want)
		}
	}
}

func TestSimple16LoadDelaySlots(t *testing.T) {
	// LD writes in WB at t+3; the next instruction's EX (t+3) still sees
	// the old value — exactly one load delay slot on this machine.
	m := loadSimple16(t)
	src := `
    LDI A1, 5          ; base
    NOP
    NOP
    LD  A2, A1, 0      ; A2 = data_mem[5]
    ADD A3, A2, B0     ; delay slot: sees old A2 (0)
    ADD A4, A2, B0     ; sees 42
    ADD A5, A2, B0     ; sees 42
    HALT
`
	s, _, err := m.AssembleAndLoad(src, sim.Interpretive)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetMem("data_mem", 5, 42); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := regA(t, s, 3); got != 0 {
		t.Errorf("A3 = %d, want 0 (load delay slot)", got)
	}
	if got := regA(t, s, 4); got != 42 {
		t.Errorf("A4 = %d, want 42", got)
	}
	if got := regA(t, s, 5); got != 42 {
		t.Errorf("A5 = %d, want 42", got)
	}
}

func TestSimple16LoopWithBNZ(t *testing.T) {
	// Sum 1..5 with a counted loop. BNZ has 2 delay slots; the decrement
	// sits in the first one, NOP in the second.
	m := loadSimple16(t)
	src := `
        LDI A1, 5        ; counter
        LDI A2, 0        ; sum
        NOP
loop:   ADD A2, A2, A1
        SUB A1, A1, B15  ; B15 preset to 1 by the test? use LDI instead
        BNZ A1, loop
        NOP
        NOP
        HALT
`
	// Preset B15 = 1 through data memory is not possible for registers;
	// adjust: use an immediate-loaded register.
	src = strings.Replace(src, "LDI A2, 0        ; sum", "LDI A2, 0\n        LDI B15, 1", 1)
	s := runProgram(t, m, src, sim.Compiled, 10000)
	if got := regA(t, s, 2); got != 15 {
		t.Errorf("sum = %d, want 15", got)
	}
	if got := regA(t, s, 1); got != 0 {
		t.Errorf("counter = %d, want 0", got)
	}
}

func TestSimple16StoreLoadRoundTrip(t *testing.T) {
	m := loadSimple16(t)
	src := `
    LDI A1, 9
    LDI A2, 123
    NOP
    ST  A2, A1, 3      ; data_mem[12] = 123
    LD  A3, A1, 3
    NOP
    NOP
    HALT
`
	s := runProgram(t, m, src, sim.CompiledPrebound, 1000)
	v, err := s.Mem("data_mem", 12)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 123 {
		t.Errorf("data_mem[12] = %d", v.Int())
	}
	if got := regA(t, s, 3); got != 123 {
		t.Errorf("A3 = %d", got)
	}
}

func TestSimple16AliasInstructions(t *testing.T) {
	m := loadSimple16(t)
	a, err := m.NewAssembler()
	if err != nil {
		t.Fatal(err)
	}
	jmp, err := a.AssembleStatement("JMP 7")
	if err != nil {
		t.Fatal(err)
	}
	b, err := a.AssembleStatement("B 7")
	if err != nil {
		t.Fatal(err)
	}
	if jmp != b {
		t.Errorf("JMP %#x != B %#x", jmp, b)
	}
	d, err := m.NewDisassembler()
	if err != nil {
		t.Fatal(err)
	}
	text, err := d.Disassemble(jmp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(text, "B ") {
		t.Errorf("alias rendered: %q", text)
	}
}

func TestSimple16CrossSimulatorEquivalence(t *testing.T) {
	// Experiment E4 on simple16: all three simulators end in identical
	// architectural state after a nontrivial program.
	m := loadSimple16(t)
	src := `
        LDI A1, 8
        LDI B15, 1
        LDI A2, 0
loop:   MAC A1, A1
        ADD A2, A2, A1
        SUB A1, A1, B15
        BNZ A1, loop
        NOP
        NOP
        SAT B9
        ST  A2, B0, 64
        HALT
`
	ref := runProgram(t, m, src, sim.Interpretive, 100000)
	for _, mode := range []sim.Mode{sim.Compiled, sim.CompiledPrebound} {
		s := runProgram(t, m, src, mode, 100000)
		if eq, diff := ref.S.Equal(s.S); !eq {
			t.Errorf("%v state differs from interpretive at %s", mode, diff)
		}
		if s.Step() != ref.Step() {
			t.Errorf("%v cycle count %d != %d", mode, s.Step(), ref.Step())
		}
	}
}

func TestSimple16Stats(t *testing.T) {
	m := loadSimple16(t)
	st := m.Stats()
	if st.Instructions < 14 {
		t.Errorf("instructions = %d, want >= 14", st.Instructions)
	}
	if st.Aliases != 2 {
		t.Errorf("aliases = %d, want 2", st.Aliases)
	}
	if st.Resources < 8 {
		t.Errorf("resources = %d", st.Resources)
	}
	if st.SourceLines == 0 || st.LinesPerOp <= 0 {
		t.Errorf("source lines missing: %+v", st)
	}
}

func TestSimple16DisassemblerRoundTrip(t *testing.T) {
	m := loadSimple16(t)
	a, _ := m.NewAssembler()
	d, _ := m.NewDisassembler()
	stmts := []string{
		"NOP",
		"ADD A1, B2, A3",
		"SUB B15, B14, B13",
		"MPY A0, A1, A2",
		"MAC A1, B1",
		"CLRACC",
		"SAT B7",
		"LDI A5, -42",
		"LD A1, B2, 100",
		"ST B3, A4, 7",
		"B 1234",
		"BNZ A9, 77",
		"HALT",
	}
	for _, stmt := range stmts {
		w, err := a.AssembleStatement(stmt)
		if err != nil {
			t.Errorf("assemble %q: %v", stmt, err)
			continue
		}
		text, err := d.Disassemble(w)
		if err != nil {
			t.Errorf("disassemble %q (%#x): %v", stmt, w, err)
			continue
		}
		w2, err := a.AssembleStatement(text)
		if err != nil {
			t.Errorf("reassemble %q: %v", text, err)
			continue
		}
		if w2 != w {
			t.Errorf("roundtrip %q → %q: %#x != %#x", stmt, text, w2, w)
		}
	}
}
