// Package core ties the golisa tool flow together: it turns LISA source
// text into the intermediate database and hands out the generated tools —
// assembler, disassembler and simulators — exactly the retargetable
// environment of the paper's §4.1 ("a parser reads the LISA models and
// translates them into an intermediate data base which is accessed by all
// other tools").
package core

import (
	"fmt"

	"golisa/internal/asm"
	"golisa/internal/model"
	"golisa/internal/models"
	"golisa/internal/parser"
	"golisa/internal/sema"
	"golisa/internal/sim"
)

// Machine is a loaded LISA model plus its generated-tool factories.
type Machine struct {
	Model  *model.Model
	Source string
}

// LoadMachine parses and analyzes LISA source text. The name is used for
// diagnostics and statistics.
func LoadMachine(name, src string) (*Machine, error) {
	d, perrs := parser.Parse(src, name+".lisa")
	if len(perrs) > 0 {
		return nil, fmt.Errorf("parse %s: %w (and %d more)", name, perrs[0], len(perrs)-1)
	}
	m, serrs := sema.Build(name, d)
	if len(serrs) > 0 {
		return nil, fmt.Errorf("analyze %s: %w (and %d more)", name, serrs[0], len(serrs)-1)
	}
	m.SourceLines = sema.CountSourceLines(src)
	return &Machine{Model: m, Source: src}, nil
}

// LoadBuiltin loads one of the embedded models ("simple16", "c62x").
func LoadBuiltin(name string) (*Machine, error) {
	src, ok := models.All[name]
	if !ok {
		return nil, fmt.Errorf("no builtin model %q (have simple16, c62x, simd16)", name)
	}
	return LoadMachine(name, src)
}

// NewAssembler generates the machine's assembler.
func (mc *Machine) NewAssembler() (*asm.Assembler, error) {
	return asm.NewAssembler(mc.Model)
}

// NewDisassembler generates the machine's disassembler.
func (mc *Machine) NewDisassembler() (*asm.Disassembler, error) {
	return asm.NewDisassembler(mc.Model)
}

// NewSimulator generates a simulator in the given mode.
func (mc *Machine) NewSimulator(mode sim.Mode) (*sim.Simulator, error) {
	s := sim.New(mc.Model, mode)
	if err := s.Reset(); err != nil {
		return nil, err
	}
	return s, nil
}

// Stats computes the paper-§4 model statistics.
func (mc *Machine) Stats() model.Stats {
	return mc.Model.ComputeStats()
}

// ProgramMemory returns the name of the model's program memory (the first
// PROGRAM_MEMORY resource), or an error when the model has none.
func (mc *Machine) ProgramMemory() (string, error) {
	for _, r := range mc.Model.Resources {
		if r.Class.String() == "PROGRAM_MEMORY" && r.IsMemory() {
			return r.Name, nil
		}
	}
	return "", fmt.Errorf("model %s has no PROGRAM_MEMORY resource", mc.Model.Name)
}

// AssembleAndLoad assembles source text and loads the image into a fresh
// simulator's program memory.
func (mc *Machine) AssembleAndLoad(src string, mode sim.Mode) (*sim.Simulator, *asm.Program, error) {
	a, err := mc.NewAssembler()
	if err != nil {
		return nil, nil, err
	}
	prog, err := a.Assemble(src)
	if err != nil {
		return nil, nil, err
	}
	s, err := mc.NewSimulator(mode)
	if err != nil {
		return nil, nil, err
	}
	pm, err := mc.ProgramMemory()
	if err != nil {
		return nil, nil, err
	}
	if err := s.LoadProgram(pm, prog.Origin, prog.Words); err != nil {
		return nil, nil, err
	}
	return s, prog, nil
}
