package core

import (
	"strings"
	"testing"

	"golisa/internal/sim"
)

func loadC62x(t *testing.T) *Machine {
	t.Helper()
	m, err := LoadBuiltin("c62x")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// packet renders one full-rate fetch packet: the first instruction followed
// by parallel NOPs padding to 8 words, so every fetch packet is a single
// execute packet and the machine runs at one packet per cycle.
func packet(insns ...string) string {
	var sb strings.Builder
	for _, in := range insns {
		sb.WriteString(in)
		sb.WriteString("\n")
	}
	for i := len(insns); i < 8; i++ {
		sb.WriteString("|| NOP\n")
	}
	return sb.String()
}

// drain appends full-rate NOP packets so in-flight E-stage results commit
// before IDLE halts the machine.
func drain(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(packet("NOP"))
	}
	return sb.String()
}

func runC62x(t *testing.T, m *Machine, src string, mode sim.Mode) *sim.Simulator {
	t.Helper()
	s, _, err := m.AssembleAndLoad(src, mode)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(100000); err != nil {
		t.Fatal(err)
	}
	if !s.Halted() {
		t.Fatal("program did not halt")
	}
	return s
}

func TestC62xSerialALU(t *testing.T) {
	m := loadC62x(t)
	src := `
    MVK .S1 A1, 6
    MVK .S1 A2, 7
    NOP
    NOP
    ADD .L1 A3, A1, A2
    SUB .L2 B1, A2, A1
    AND .L1 B2, A1, A2
    CMPGT .L1 B3, A2, A1
` + drain(2) + packet("IDLE") + drain(1)
	for _, mode := range []sim.Mode{sim.Interpretive, sim.Compiled, sim.CompiledPrebound} {
		t.Run(mode.String(), func(t *testing.T) {
			s := runC62x(t, m, src, mode)
			if got := regA(t, s, 3); got != 13 {
				t.Errorf("A3 = %d, want 13", got)
			}
			if got := regB(t, s, 1); got != 1 {
				t.Errorf("B1 = %d", got)
			}
			if got := regB(t, s, 2); got != 6 {
				t.Errorf("B2 = %d", got)
			}
			if got := regB(t, s, 3); got != 1 {
				t.Errorf("B3 = %d (CMPGT)", got)
			}
		})
	}
}

func TestC62xParallelExecutePacket(t *testing.T) {
	// Eight instructions in one fetch packet with p-bits all execute in the
	// same cycle (one execute packet).
	m := loadC62x(t)
	parallel := packet(
		"MVK .S1 A1, 1",
		"|| MVK .S2 A2, 2",
		"|| MVK .S1 A3, 3",
		"|| MVK .S2 A4, 4",
		"|| MVK .S1 A5, 5",
		"|| MVK .S2 A6, 6",
		"|| MVK .S1 A7, 7",
		"|| MVK .S2 A8, 8",
	) + packet("IDLE") + drain(1)
	serial := `
    MVK .S1 A1, 1
    MVK .S2 A2, 2
    MVK .S1 A3, 3
    MVK .S2 A4, 4
    MVK .S1 A5, 5
    MVK .S2 A6, 6
    MVK .S1 A7, 7
    MVK .S2 A8, 8
` + packet("IDLE") + drain(1)

	sp := runC62x(t, m, parallel, sim.Compiled)
	ss := runC62x(t, m, serial, sim.Compiled)
	for i := uint64(1); i <= 8; i++ {
		if got := regA(t, sp, i); got != int64(i) {
			t.Errorf("parallel: A%d = %d", i, got)
		}
		if got := regA(t, ss, i); got != int64(i) {
			t.Errorf("serial: A%d = %d", i, got)
		}
	}
	// The serial version dispatches one instruction per cycle: 7 extra
	// cycles versus the fully parallel packet.
	dp, ds := sp.Step(), ss.Step()
	if ds != dp+7 {
		t.Errorf("serial %d cycles, parallel %d: want exactly 7 more", ds, dp)
	}
}

func TestC62xBranchFiveDelaySlots(t *testing.T) {
	// Full-rate code: a taken branch resolves in DC; exactly the 5 fetch
	// packets already in the fetch pipeline execute (the TMS320C62xx's 5
	// delay slots), then execution continues at the target.
	m := loadC62x(t)
	src := packet("B .S1 56") + // packet 0 (words 0..7)
		packet("MVK .S1 A1, 1") + // packet 1: delay slot 1
		packet("MVK .S1 A2, 2") + // packet 2: delay slot 2
		packet("MVK .S1 A3, 3") + // packet 3: delay slot 3
		packet("MVK .S1 A4, 4") + // packet 4: delay slot 4
		packet("MVK .S1 A5, 5") + // packet 5: delay slot 5
		packet("MVK .S1 A9, 99") + // packet 6 (words 48..55): must be skipped
		packet("MVK .S1 A6, 6") + // packet 7 (words 56..): branch target
		packet("IDLE") + drain(1)
	s := runC62x(t, m, src, sim.Compiled)
	for i, want := range []int64{1, 2, 3, 4, 5, 6} {
		if got := regA(t, s, uint64(i+1)); got != want {
			t.Errorf("A%d = %d, want %d (delay slot %d)", i+1, got, want, i+1)
		}
	}
	if got := regA(t, s, 9); got != 0 {
		t.Errorf("A9 = %d, want 0 (beyond the 5 delay slots)", got)
	}
}

func TestC62xMultiplyOneDelaySlot(t *testing.T) {
	m := loadC62x(t)
	src := packet("MVK .S1 A1, 6") +
		packet("MVK .S1 A2, 7") +
		packet("MPY .M1 A3, A1, A2") + // result in E2
		packet("ADD .L1 A4, A3, A0") + // delay slot: old A3 (0)
		packet("ADD .L1 A5, A3, A0") + // sees 42
		drain(2) + packet("IDLE") + drain(1)
	s := runC62x(t, m, src, sim.Interpretive)
	if got := regA(t, s, 3); got != 42 {
		t.Errorf("A3 = %d, want 42", got)
	}
	if got := regA(t, s, 4); got != 0 {
		t.Errorf("A4 = %d, want 0 (multiply delay slot)", got)
	}
	if got := regA(t, s, 5); got != 42 {
		t.Errorf("A5 = %d, want 42", got)
	}
}

func TestC62xLoadFourDelaySlots(t *testing.T) {
	m := loadC62x(t)
	src := packet("MVK .S1 A1, 5") +
		packet("NOP") +
		packet("LDW .D1 *A1[0], A2") + // result in E5
		packet("ADD .L1 A3, A2, A0") + // delay 1
		packet("ADD .L1 A4, A2, A0") + // delay 2
		packet("ADD .L1 A5, A2, A0") + // delay 3
		packet("ADD .L1 A6, A2, A0") + // delay 4
		packet("ADD .L1 A7, A2, A0") + // sees the loaded value
		drain(2) + packet("IDLE") + drain(1)
	s, _, err := m.AssembleAndLoad(src, sim.Compiled)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetMem("data_mem", 5, 42); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(100000); err != nil {
		t.Fatal(err)
	}
	if got := regA(t, s, 2); got != 42 {
		t.Errorf("A2 = %d, want 42", got)
	}
	for i := uint64(3); i <= 6; i++ {
		if got := regA(t, s, i); got != 0 {
			t.Errorf("A%d = %d, want 0 (load delay slot)", i, got)
		}
	}
	if got := regA(t, s, 7); got != 42 {
		t.Errorf("A7 = %d, want 42", got)
	}
}

func TestC62xStoreCommitsInE3(t *testing.T) {
	m := loadC62x(t)
	src := packet("MVK .S1 A1, 9") +
		packet("MVK .S1 A2, 123") +
		packet("NOP") +
		packet("STW .D1 A2, *A1[2]") +
		drain(4) + packet("IDLE") + drain(1)
	s := runC62x(t, m, src, sim.CompiledPrebound)
	v, err := s.Mem("data_mem", 11)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 123 {
		t.Errorf("data_mem[11] = %d, want 123", v.Int())
	}
}

func TestC62xMulticycleNOPStalls(t *testing.T) {
	// NOP n idles dispatch for n extra cycles: total cycle count grows by
	// exactly n versus NOP 0 (paper Example 5 mechanism).
	m := loadC62x(t)
	mk := func(n string) string {
		return packet("MVK .S1 A1, 1") +
			packet("NOP "+n) +
			packet("MVK .S1 A2, 2") +
			packet("IDLE") + drain(1)
	}
	base := runC62x(t, m, mk("0"), sim.Compiled)
	stalled := runC62x(t, m, mk("5"), sim.Compiled)
	if got := regA(t, stalled, 2); got != 2 {
		t.Errorf("A2 = %d after stall", got)
	}
	d := stalled.Step() - base.Step()
	if d != 5 {
		t.Errorf("NOP 5 added %d cycles, want exactly 5", d)
	}
}

func TestC62xMVKHBuildsConstants(t *testing.T) {
	m := loadC62x(t)
	src := packet("MVK .S1 A1, 0x1234") +
		packet("MVKH .S1 A1, 0xdead") +
		drain(1) + packet("IDLE") + drain(1)
	s := runC62x(t, m, src, sim.Compiled)
	v, err := s.Mem("A", 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Uint() != 0xdead1234 {
		t.Errorf("A1 = %#x, want 0xdead1234", v.Uint())
	}
}

func TestC62xSaturatingOps(t *testing.T) {
	m := loadC62x(t)
	src := packet("MVK .S1 A1, 0x7fff") +
		packet("MVKH .S1 A1, 0x7fff") + // A1 = 0x7fff7fff
		packet("NOP") +
		packet("SADD .L1 A2, A1, A1") + // saturates to 0x7fffffff
		packet("SMPY .M1 A3, A1, A1") + // (0x7fff*0x7fff)<<1
		drain(2) + packet("IDLE") + drain(1)
	s := runC62x(t, m, src, sim.Interpretive)
	v, _ := s.Mem("A", 2)
	if v.Uint() != 0x7fffffff {
		t.Errorf("SADD: A2 = %#x", v.Uint())
	}
	v, _ = s.Mem("A", 3)
	if v.Int() != int64(0x7fff*0x7fff)<<1 {
		t.Errorf("SMPY: A3 = %#x", v.Uint())
	}
}

func TestC62xLoopBNZ(t *testing.T) {
	// Counted loop at full rate. The branch has 5 delay-slot packets; the
	// loop body lives in them.
	m := loadC62x(t)
	src := packet("MVK .S1 A1, 10") + // counter, packet at 0
		packet("MVK .S1 A2, 0") + // sum
		packet("MVK .S1 A3, 1") + // constant 1
		packet("NOP") +
		packet("NOP") +
		// loop head at word 40 (packet 5)
		packet("BNZ .S1 A1, 40") +
		packet("ADD .L1 A2, A2, A1") + // delay 1: sum += counter
		packet("SUB .L1 A1, A1, A3") + // delay 2: counter--
		packet("NOP") + // delay 3
		packet("NOP") + // delay 4
		packet("NOP") + // delay 5
		// fallthrough when counter == 0
		packet("IDLE") + drain(1)
	s := runC62x(t, m, src, sim.Compiled)
	// BNZ reads A1 in DC before the SUB in its delay slots: iterations run
	// with A1 = 10..1, and the final pass (A1 == 0 at the BNZ) falls
	// through. Sum = 10+9+...+1 = 55... but note the BNZ for iteration k
	// tests the counter before that iteration's SUB. Trace: the loop exits
	// when BNZ sees 0, and ADD/SUB in the delay slots run once more.
	v, _ := s.Mem("A", 2)
	if v.Int() != 55 {
		t.Errorf("sum = %d, want 55", v.Int())
	}
	v, _ = s.Mem("A", 1)
	if v.Int() != -1 {
		t.Errorf("counter = %d, want -1 (delay-slot SUB after final BNZ)", v.Int())
	}
}

func TestC62xInterruptRoundTrip(t *testing.T) {
	m := loadC62x(t)
	// Main loop at 0 spins; ISR at word 64 sets A15 and returns.
	src := packet("B .S1 0") + // self-loop (5 delay packets follow)
		packet("NOP") + packet("NOP") + packet("NOP") + packet("NOP") + packet("NOP") +
		packet("NOP") + packet("NOP") + // words 48..63
		packet("MVK .S1 A15, 170") + // ISR at word 64
		packet("IRET") +
		packet("NOP") + packet("NOP") + packet("NOP") + packet("NOP") + packet("NOP")
	s, _, err := m.AssembleAndLoad(src, sim.Compiled)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetScalar("isr_vector", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(30); err != nil {
		t.Fatal(err)
	}
	if err := s.SetScalar("irq", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(60); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Mem("A", 15)
	if v.Int() != 170 {
		t.Errorf("A15 = %d, want 170 (ISR did not run)", v.Int())
	}
	irq, _ := s.Scalar("irq")
	if irq.Bool() {
		t.Error("irq line not cleared")
	}
	ie, _ := s.Scalar("ie")
	if !ie.Bool() {
		t.Error("interrupts not re-enabled after IRET")
	}
}

func TestC62xProgramMemoryWaitStates(t *testing.T) {
	// The same program on a machine with 1 program-memory wait state takes
	// strictly more cycles.
	src0 := loadC62x(t).Source
	fast, err := LoadMachine("c62x-fast", src0)
	if err != nil {
		t.Fatal(err)
	}
	slowSrc := strings.Replace(src0, "PROGRAM_MEMORY bit[32] prog_mem[0x4000] WAIT 0;",
		"PROGRAM_MEMORY bit[32] prog_mem[0x4000] WAIT 1;", 1)
	slow, err := LoadMachine("c62x-slow", slowSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog := packet("MVK .S1 A1, 7") + packet("NOP") + packet("IDLE") + drain(1)
	sf := runC62x(t, fast, prog, sim.Compiled)
	ss := runC62x(t, slow, prog, sim.Compiled)
	if got := regA(t, ss, 1); got != 7 {
		t.Errorf("slow machine A1 = %d", got)
	}
	if ss.Step() <= sf.Step() {
		t.Errorf("wait states did not slow the machine: %d vs %d cycles", ss.Step(), sf.Step())
	}
}

func TestC62xCrossSimulatorEquivalence(t *testing.T) {
	m := loadC62x(t)
	src := packet("MVK .S1 A1, 10") +
		packet("MVK .S1 A2, 0") +
		packet("MVK .S1 A3, 1") +
		packet("NOP") +
		packet("NOP") +
		packet("BNZ .S1 A1, 40") +
		packet("ADD .L1 A2, A2, A1", "|| MPY .M1 A4, A1, A1") +
		packet("SUB .L1 A1, A1, A3") +
		packet("STW .D1 A2, *A0[100]") +
		packet("NOP") +
		packet("NOP") +
		packet("IDLE") + drain(1)
	ref := runC62x(t, m, src, sim.Interpretive)
	for _, mode := range []sim.Mode{sim.Compiled, sim.CompiledPrebound} {
		s := runC62x(t, m, src, mode)
		if eq, diff := ref.S.Equal(s.S); !eq {
			t.Errorf("%v differs from interpretive at %s", mode, diff)
		}
		if s.Step() != ref.Step() {
			t.Errorf("%v cycles %d != %d", mode, s.Step(), ref.Step())
		}
	}
}

func TestC62xMixedExecutePacketsInOneFetchPacket(t *testing.T) {
	// A fetch packet holding two execute packets (4+4) dispatches over two
	// cycles with the fetch pipeline stalled in between.
	m := loadC62x(t)
	mixed := packet(
		"MVK .S1 A1, 1",
		"|| MVK .S2 A2, 2",
		"|| MVK .S1 A3, 3",
		"|| MVK .S2 A4, 4",
		"MVK .S1 A5, 5", // second execute packet
		"|| MVK .S2 A6, 6",
		"|| MVK .S1 A7, 7",
		"|| MVK .S2 A8, 8",
	) + packet("IDLE") + drain(1)
	s := runC62x(t, m, mixed, sim.Compiled)
	for i := uint64(1); i <= 8; i++ {
		if got := regA(t, s, i); got != int64(i) {
			t.Errorf("A%d = %d", i, got)
		}
	}
	full := packet(
		"MVK .S1 A1, 1",
		"|| MVK .S2 A2, 2",
		"|| MVK .S1 A3, 3",
		"|| MVK .S2 A4, 4",
		"|| MVK .S1 A5, 5",
		"|| MVK .S2 A6, 6",
		"|| MVK .S1 A7, 7",
		"|| MVK .S2 A8, 8",
	) + packet("IDLE") + drain(1)
	sf := runC62x(t, m, full, sim.Compiled)
	if s.Step() != sf.Step()+1 {
		t.Errorf("two execute packets should cost exactly one extra cycle: %d vs %d", s.Step(), sf.Step())
	}
}

func TestC62xStats(t *testing.T) {
	m := loadC62x(t)
	st := m.Stats()
	if st.Instructions < 28 {
		t.Errorf("instructions = %d, want >= 28", st.Instructions)
	}
	if st.Aliases != 4 {
		t.Errorf("aliases = %d, want 4", st.Aliases)
	}
	if st.Resources < 20 {
		t.Errorf("resources = %d", st.Resources)
	}
	if st.Pipelines != 2 || st.PipelineStages != 11 {
		t.Errorf("pipelines: %+v", st)
	}
}

func TestC62xDisassemblerRoundTrip(t *testing.T) {
	m := loadC62x(t)
	a, _ := m.NewAssembler()
	d, _ := m.NewDisassembler()
	stmts := []string{
		"ADD .L1 A1, A2, A3",
		"|| SUB .L2 B1, B2, B3",
		"CMPEQ .L1 A9, B9, A0",
		"SADD .L2 B5, B6, B7",
		"ABS .L1 A4, B4",
		"SHL .S1 A1, A2, A3",
		"MVK .S2 B0, -17",
		"MVKH .S1 A1, 0xffff",
		"B .S1 1024",
		"BNZ .S2 B0, 48",
		"MPY .M1 A3, A1, A2",
		"SMPY .M2 B3, B1, B2",
		"LDW .D1 *A5[3], A1",
		"STW .D2 B1, *B5[7]",
		"NOP 4",
		"NOP",
		"IDLE",
		"IRET",
	}
	for _, stmt := range stmts {
		w, err := a.AssembleStatement(stmt)
		if err != nil {
			t.Errorf("assemble %q: %v", stmt, err)
			continue
		}
		text, err := d.Disassemble(w)
		if err != nil {
			t.Errorf("disassemble %q (%#x): %v", stmt, w, err)
			continue
		}
		w2, err := a.AssembleStatement(text)
		if err != nil {
			t.Errorf("reassemble %q: %v", text, err)
			continue
		}
		if w2 != w {
			t.Errorf("roundtrip %q → %q: %#x != %#x", stmt, text, w2, w)
		}
	}
}

func TestC62xBitFieldInstructions(t *testing.T) {
	m := loadC62x(t)
	src := packet("MVK .S1 A1, 0x1234") +
		packet("MVKH .S1 A1, 0xdead") + // A1 = 0xdead1234
		packet("NOP") +
		packet("EXT .S1 A2, A1, 8, 24") + // sign-extend bits 23..16 (0xad → negative)
		packet("EXTU .S1 A3, A1, 8, 24") + // zero-extend the same field
		packet("MVK .S1 A4, 1") +
		packet("NOP") +
		packet("NORM .L1 A5, A4") + // 1 has 30 redundant sign bits
		packet("MVK .S1 A6, -1") +
		packet("NOP") +
		packet("NORM .L1 A7, A6") + // -1: 31 redundant sign bits
		packet("NORM .L1 A8, A0") + // 0: defined as 31
		drain(2) + packet("IDLE") + drain(1)
	s := runC62x(t, m, src, sim.Compiled)
	if got := regA(t, s, 2); got != -83 { // 0xad sign-extended from 8 bits
		t.Errorf("EXT = %d, want -83", got)
	}
	if got := regA(t, s, 3); got != 0xad {
		t.Errorf("EXTU = %d, want 0xad", got)
	}
	if got := regA(t, s, 5); got != 30 {
		t.Errorf("NORM 1 = %d, want 30", got)
	}
	if got := regA(t, s, 7); got != 31 {
		t.Errorf("NORM -1 = %d, want 31", got)
	}
	if got := regA(t, s, 8); got != 31 {
		t.Errorf("NORM 0 = %d, want 31", got)
	}
}
