package core

import (
	"testing"

	"golisa/internal/sim"
)

func loadSimd16(t *testing.T) *Machine {
	t.Helper()
	m, err := LoadBuiltin("simd16")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSimd16VectorAddMul(t *testing.T) {
	m := loadSimd16(t)
	src := `
    LDI R1, 100
    LDI R2, 104
    NOP
    VLD V0, R1, 0     ; a[0..3]
    VLD V1, R2, 0     ; b[0..3]
    VADD V2, V0, V1
    VMUL V3, V0, V1
    LDI R3, 200
    NOP
    VST V2, R3, 0
    VST V3, R3, 4
    HALT
`
	for _, mode := range []sim.Mode{sim.Interpretive, sim.Compiled, sim.CompiledPrebound} {
		t.Run(mode.String(), func(t *testing.T) {
			s, _, err := m.AssembleAndLoad(src, mode)
			if err != nil {
				t.Fatal(err)
			}
			a := []int64{1, 2, 3, 4}
			b := []int64{10, 20, 30, 40}
			for i := 0; i < 4; i++ {
				_ = s.SetMem("data_mem", uint64(100+i), uint64(a[i]))
				_ = s.SetMem("data_mem", uint64(104+i), uint64(b[i]))
			}
			if _, err := s.Run(1000); err != nil {
				t.Fatal(err)
			}
			if !s.Halted() {
				t.Fatal("did not halt")
			}
			for i := 0; i < 4; i++ {
				sum, _ := s.Mem("data_mem", uint64(200+i))
				prod, _ := s.Mem("data_mem", uint64(204+i))
				if sum.Int() != a[i]+b[i] {
					t.Errorf("lane %d sum = %d, want %d", i, sum.Int(), a[i]+b[i])
				}
				if prod.Int() != a[i]*b[i] {
					t.Errorf("lane %d prod = %d, want %d", i, prod.Int(), a[i]*b[i])
				}
			}
		})
	}
}

func TestSimd16DotProductViaMACAndReduce(t *testing.T) {
	// 16-element dot product: 4 VMACs over 4-lane chunks, saturate, reduce.
	m := loadSimd16(t)
	src := `
        LDI R1, 100       ; &a
        LDI R2, 150       ; &b
        LDI R4, 4         ; chunk count
        VCLR
loop:   VLD V0, R1, 0
        VLD V1, R2, 0
        VMAC V0, V1
        ADDI R1, 4
        ADDI R2, 4
        ADDI R4, -1
        BNZ R4, loop
        NOP               ; branch delay slot
        VSAT V7
        VRED R10, V7
        HALT
`
	s, _, err := m.AssembleAndLoad(src, sim.Compiled)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for i := 0; i < 16; i++ {
		av, bv := int64(i+1), int64(2*i-5)
		_ = s.SetMem("data_mem", uint64(100+i), uint64(av))
		_ = s.SetMem("data_mem", uint64(150+i), uint64(bv))
		want += av * bv
	}
	if _, err := s.Run(10000); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Mem("R", 10)
	if v.Int() != want {
		t.Errorf("dot = %d, want %d", v.Int(), want)
	}
}

func TestSimd16BroadcastAndZeroAlias(t *testing.T) {
	m := loadSimd16(t)
	src := `
    LDI R5, 7
    NOP
    VBCAST V4, R5
    VZERO V5
    VSUB V6, V4, V5   ; V6 = broadcast(7)
    VRED R9, V6       ; 4*7
    HALT
`
	s, _, err := m.AssembleAndLoad(src, sim.CompiledPrebound)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Mem("R", 9)
	if v.Int() != 28 {
		t.Errorf("R9 = %d, want 28", v.Int())
	}
	// VZERO must have zeroed all 4 lanes of V5 (banked access).
	for lane := uint64(0); lane < 4; lane++ {
		lv, err := s.S.ReadBanked(m.Model.Resource("vreg"), 5, lane)
		if err != nil {
			t.Fatal(err)
		}
		if lv.Int() != 0 {
			t.Errorf("V5 lane %d = %d", lane, lv.Int())
		}
	}
}

func TestSimd16SaturationPerLane(t *testing.T) {
	m := loadSimd16(t)
	src := `
    LDI R1, 100
    LDI R5, 30000
    NOP
    VBCAST V0, R5
    VCLR
    VMAC V0, V0
    VMAC V0, V0
    VMAC V0, V0
    VMAC V0, V0       ; 4 * 9e8 = 3.6e9 > 2^31-1
    VSAT V1
    VST V1, R1, 0
    HALT
`
	s, _, err := m.AssembleAndLoad(src, sim.Interpretive)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		v, _ := s.Mem("data_mem", 100+i)
		if v.Int() != 0x7fffffff {
			t.Errorf("lane %d = %d, want saturated max", i, v.Int())
		}
	}
}

func TestSimd16CrossModeEquivalence(t *testing.T) {
	m := loadSimd16(t)
	src := `
        LDI R1, 100
        LDI R4, 3
        VCLR
loop:   VLD V0, R1, 0
        VMAC V0, V0
        ADDI R1, 4
        ADDI R4, -1
        BNZ R4, loop
        NOP
        VSAT V2
        VRED R8, V2
        HALT
`
	run := func(mode sim.Mode) *sim.Simulator {
		s, _, err := m.AssembleAndLoad(src, mode)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			_ = s.SetMem("data_mem", uint64(100+i), uint64(i*3+1))
		}
		if _, err := s.Run(10000); err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref := run(sim.Interpretive)
	for _, mode := range []sim.Mode{sim.Compiled, sim.CompiledPrebound} {
		s := run(mode)
		if eq, diff := ref.S.Equal(s.S); !eq {
			t.Errorf("%v differs at %s", mode, diff)
		}
		if s.Step() != ref.Step() {
			t.Errorf("%v cycles %d != %d", mode, s.Step(), ref.Step())
		}
	}
}

func TestSimd16Stats(t *testing.T) {
	st := loadSimd16(t).Stats()
	if st.Instructions < 15 {
		t.Errorf("instructions = %d", st.Instructions)
	}
	if st.Aliases != 1 {
		t.Errorf("aliases = %d, want 1 (VZERO)", st.Aliases)
	}
}

func TestSimd16DisassemblerRoundTrip(t *testing.T) {
	m := loadSimd16(t)
	a, _ := m.NewAssembler()
	d, _ := m.NewDisassembler()
	for _, stmt := range []string{
		"VADD V1, V2, V3", "VSUB V0, V7, V1", "VMUL V4, V5, V6",
		"VMAC V1, V2", "VCLR", "VSAT V3",
		"VLD V2, R4, 16", "VST V2, R4, 16", "VBCAST V1, R15", "VRED R3, V6",
		"LDI R1, -7", "ADDI R2, 100", "B 42", "BNZ R3, 7", "HALT", "NOP",
	} {
		w, err := a.AssembleStatement(stmt)
		if err != nil {
			t.Errorf("assemble %q: %v", stmt, err)
			continue
		}
		text, err := d.Disassemble(w)
		if err != nil {
			t.Errorf("disassemble %q: %v", stmt, err)
			continue
		}
		w2, err := a.AssembleStatement(text)
		if err != nil || w2 != w {
			t.Errorf("roundtrip %q → %q: %#x vs %#x (%v)", stmt, text, w, w2, err)
		}
	}
}
