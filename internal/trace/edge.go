package trace

// EdgeObserver is the optional activation-edge-aware extension of
// Observer. Implementations receive OnActivateEdge INSTEAD of the plain
// OnActivate when events are delivered through EmitActivate, so an
// edge-aware observer must do its legacy bookkeeping inside
// OnActivateEdge (typically by calling its own OnActivate). Nop
// deliberately does not implement this interface: observers embedding
// Nop keep receiving the plain callback unless they opt in themselves.
type EdgeObserver interface {
	// OnActivateEdge reports a scheduled activation as a directed edge:
	// source is the operation whose ACTIVATION section requested it,
	// target the operation being scheduled, delay the extra delay.
	OnActivateEdge(source, target string, delay uint64)
}

// EmitActivate delivers an activation event to o: edge-aware observers
// get the (source, target) pair, legacy observers the classic target.
// This is the compatibility shim every edge-annotated emitter goes
// through; the .lrec recorder stays a legacy observer, so the recording
// wire format is unchanged by edge attribution.
func EmitActivate(o Observer, source, target string, delay uint64) {
	if e, ok := o.(EdgeObserver); ok {
		e.OnActivateEdge(source, target, delay)
		return
	}
	o.OnActivate(target, delay)
}

// OnActivateEdge implements EdgeObserver: the fanout re-dispatches
// through the shim so each member gets the richest form it understands.
func (m Multi) OnActivateEdge(source, target string, delay uint64) {
	for _, o := range m {
		EmitActivate(o, source, target, delay)
	}
}
