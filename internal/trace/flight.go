package trace

import (
	"fmt"
	"io"
)

// Kind classifies a flight-recorder event.
type Kind uint8

// Event kinds recorded by the flight recorder.
const (
	KindStepBegin Kind = iota
	KindStepEnd
	KindDecode
	KindActivate
	KindExec
	KindBehavior
	KindStall
	KindFlush
	KindShift
	KindRetire
	KindWrite
	KindMemWrite
	// KindDiverge marks an externally reported event — a co-simulation
	// divergence or similar out-of-band note injected with Note.
	KindDiverge
)

func (k Kind) String() string {
	switch k {
	case KindStepBegin:
		return "step-begin"
	case KindStepEnd:
		return "step-end"
	case KindDecode:
		return "decode"
	case KindActivate:
		return "activate"
	case KindExec:
		return "exec"
	case KindBehavior:
		return "behavior"
	case KindStall:
		return "stall"
	case KindFlush:
		return "flush"
	case KindShift:
		return "shift"
	case KindRetire:
		return "retire"
	case KindWrite:
		return "write"
	case KindMemWrite:
		return "mem-write"
	case KindDiverge:
		return "diverge"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded simulation event in compact form. Field meaning
// depends on Kind: Name is the operation/resource/root name, Value the
// instruction word, written value, delay or entry count, Aux the memory
// address or packet id. Stall and flush events additionally carry their
// hazard attribution: Cause, the gating Resource for data hazards (Res),
// the requesting operation (Name) and its packet (Aux).
type Event struct {
	Step  uint64
	Kind  Kind
	Pipe  int32
	Stage int32
	Name  string
	Value uint64
	Aux   uint64
	Flag  bool
	Cause Cause
	Res   string
}

// String renders the event for post-mortem dumps.
func (e Event) String() string {
	loc := ""
	if e.Pipe >= 0 {
		loc = fmt.Sprintf(" pipe=%d stage=%d", e.Pipe, e.Stage)
	}
	switch e.Kind {
	case KindStepBegin, KindStepEnd, KindShift:
		return fmt.Sprintf("#%d %s%s", e.Step, e.Kind, loc)
	case KindDecode:
		return fmt.Sprintf("#%d decode %s word=%#x hit=%v", e.Step, e.Name, e.Value, e.Flag)
	case KindActivate:
		return fmt.Sprintf("#%d activate %s delay=%d", e.Step, e.Name, e.Value)
	case KindExec:
		return fmt.Sprintf("#%d exec %s%s packet=%#x", e.Step, e.Name, loc, e.Aux)
	case KindBehavior:
		return fmt.Sprintf("#%d behavior %s statements=%d", e.Step, e.Name, e.Value)
	case KindRetire:
		return fmt.Sprintf("#%d retire%s packet=%#x entries=%d", e.Step, loc, e.Aux, e.Value)
	case KindWrite:
		return fmt.Sprintf("#%d write %s = %#x", e.Step, e.Name, e.Value)
	case KindMemWrite:
		return fmt.Sprintf("#%d write %s[%#x] = %#x", e.Step, e.Name, e.Aux, e.Value)
	case KindStall, KindFlush:
		s := fmt.Sprintf("#%d %s%s", e.Step, e.Kind, loc)
		if e.Cause != CauseNone {
			s += " cause=" + e.Cause.String()
			if e.Res != "" {
				s += "(" + e.Res + ")"
			}
		}
		if e.Name != "" {
			s += " by=" + e.Name
		}
		if e.Aux != 0 {
			s += fmt.Sprintf(" packet=%#x", e.Aux)
		}
		return s
	case KindDiverge:
		return fmt.Sprintf("#%d DIVERGE %s value=%#x", e.Step, e.Name, e.Value)
	default:
		return fmt.Sprintf("#%d %s %s%s value=%#x", e.Step, e.Kind, e.Name, loc, e.Value)
	}
}

// Flight is a ring-buffer flight recorder: an Observer keeping the last N
// events for post-mortem inspection when a simulation dies. It costs one
// slot write per event and never allocates after construction.
type Flight struct {
	buf  []Event
	next int
	full bool
	cur  uint64
}

// NewFlight creates a flight recorder keeping the last n events (minimum 1).
func NewFlight(n int) *Flight {
	if n < 1 {
		n = 1
	}
	return &Flight{buf: make([]Event, n)}
}

func (f *Flight) record(e Event) {
	e.Step = f.cur
	f.buf[f.next] = e
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.full = true
	}
}

// Note records an out-of-band event (e.g. a co-simulation divergence) in
// the ring at the current step, so post-mortem dumps interleave it with
// the simulation events that led up to it.
func (f *Flight) Note(kind Kind, name string, value uint64) {
	f.record(Event{Kind: kind, Pipe: -1, Name: name, Value: value})
}

// Events returns the recorded events, oldest first.
func (f *Flight) Events() []Event {
	if !f.full {
		return append([]Event(nil), f.buf[:f.next]...)
	}
	out := make([]Event, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// Dump writes the recorded events, oldest first, one per line.
func (f *Flight) Dump(w io.Writer) error {
	ew := &errWriter{w: w}
	events := f.Events()
	fmt.Fprintf(ew, "flight recorder: last %d events\n", len(events))
	for _, e := range events {
		fmt.Fprintf(ew, "  %s\n", e.String())
	}
	return ew.err
}

// OnAttach implements Observer.
func (f *Flight) OnAttach(string, []PipeInfo) {}

// OnStepBegin implements Observer.
func (f *Flight) OnStepBegin(step uint64) {
	f.cur = step
	f.record(Event{Kind: KindStepBegin, Pipe: -1})
}

// OnStepEnd implements Observer.
func (f *Flight) OnStepEnd(step uint64) { f.record(Event{Kind: KindStepEnd, Pipe: -1}) }

// OnOccupancy implements Observer (not recorded; occupancy is derivable
// from exec/shift events).
func (f *Flight) OnOccupancy(int, []bool) {}

// OnDecode implements Observer.
func (f *Flight) OnDecode(root string, word uint64, hit bool) {
	f.record(Event{Kind: KindDecode, Pipe: -1, Name: root, Value: word, Flag: hit})
}

// OnActivate implements Observer.
func (f *Flight) OnActivate(target string, delay uint64) {
	f.record(Event{Kind: KindActivate, Pipe: -1, Name: target, Value: delay})
}

// OnExec implements Observer.
func (f *Flight) OnExec(op string, pipe, stage int, packet uint64) {
	f.record(Event{Kind: KindExec, Pipe: int32(pipe), Stage: int32(stage), Name: op, Aux: packet})
}

// OnBehavior implements Observer.
func (f *Flight) OnBehavior(op string, statements uint64) {
	f.record(Event{Kind: KindBehavior, Pipe: -1, Name: op, Value: statements})
}

// OnStall implements Observer.
func (f *Flight) OnStall(pipe, stage int) {
	f.record(Event{Kind: KindStall, Pipe: int32(pipe), Stage: int32(stage)})
}

// OnFlush implements Observer.
func (f *Flight) OnFlush(pipe, stage int) {
	f.record(Event{Kind: KindFlush, Pipe: int32(pipe), Stage: int32(stage)})
}

// OnStallInfo implements HazardObserver: the ring keeps the full hazard
// attribution so post-mortem dumps show why each stall was requested.
func (f *Flight) OnStallInfo(info StallInfo) {
	f.record(Event{Kind: KindStall, Pipe: int32(info.Pipe), Stage: int32(info.Stage),
		Name: info.SourceOp, Aux: info.Packet, Cause: info.Cause, Res: info.Resource})
}

// OnFlushInfo implements HazardObserver.
func (f *Flight) OnFlushInfo(info StallInfo) {
	f.record(Event{Kind: KindFlush, Pipe: int32(info.Pipe), Stage: int32(info.Stage),
		Name: info.SourceOp, Aux: info.Packet, Cause: info.Cause, Res: info.Resource})
}

// OnShift implements Observer.
func (f *Flight) OnShift(pipe int) {
	f.record(Event{Kind: KindShift, Pipe: int32(pipe), Stage: -1})
}

// OnRetire implements Observer.
func (f *Flight) OnRetire(pipe, stage int, packet uint64, entries int) {
	f.record(Event{Kind: KindRetire, Pipe: int32(pipe), Stage: int32(stage), Aux: packet, Value: uint64(entries)})
}

// OnResourceWrite implements Observer.
func (f *Flight) OnResourceWrite(resource string, value uint64) {
	f.record(Event{Kind: KindWrite, Pipe: -1, Name: resource, Value: value})
}

// OnMemWrite implements Observer.
func (f *Flight) OnMemWrite(resource string, addr, value uint64) {
	f.record(Event{Kind: KindMemWrite, Pipe: -1, Name: resource, Aux: addr, Value: value})
}
