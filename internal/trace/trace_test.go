package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

var testPipes = []PipeInfo{{Name: "pipe", Stages: []string{"FE", "DC", "EX", "WB"}}}

// feed drives a small synthetic 3-step simulation into an observer:
// step 0: decode miss, exec on FE, stage stall, resource write
// step 1: decode hit, exec on DC (same packet), whole-pipe flush, shift
// step 2: exec on EX, retire of packet 7, mem write
func feed(o Observer) {
	o.OnAttach("m", testPipes)

	o.OnStepBegin(0)
	o.OnDecode("insn", 0x1234, false)
	o.OnActivate("add", 1)
	o.OnExec("fetch", 0, 0, 7)
	o.OnBehavior("fetch", 3)
	o.OnStall(0, 1)
	o.OnResourceWrite("pc", 2)
	o.OnOccupancy(0, []bool{true, false, false, false})
	o.OnStepEnd(0)

	o.OnStepBegin(1)
	o.OnDecode("insn", 0x1234, true)
	o.OnExec("decode", 0, 1, 7)
	o.OnFlush(0, -1)
	o.OnShift(0)
	o.OnOccupancy(0, []bool{true, true, false, false})
	o.OnStepEnd(1)

	o.OnStepBegin(2)
	o.OnExec("alu", 0, 2, 7)
	o.OnExec("free", -1, -1, 0)
	o.OnRetire(0, 3, 7, 2)
	o.OnMemWrite("mem", 0x10, 42)
	o.OnOccupancy(0, []bool{false, true, true, false})
	o.OnStepEnd(2)
}

func TestFanout(t *testing.T) {
	if Fanout() != nil {
		t.Error("Fanout() should be nil")
	}
	if Fanout(nil, nil) != nil {
		t.Error("Fanout(nil, nil) should be nil")
	}
	m := NewMetrics()
	if got := Fanout(nil, m); got != Observer(m) {
		t.Errorf("Fanout with one live observer should return it unwrapped, got %T", got)
	}
	f := NewFlight(8)
	combined := Fanout(m, nil, Fanout(f, NewMetrics()))
	multi, ok := combined.(Multi)
	if !ok {
		t.Fatalf("Fanout of 3 observers = %T, want Multi", combined)
	}
	if len(multi) != 3 {
		t.Errorf("nested Multi not flattened: len = %d, want 3", len(multi))
	}
	// Events must reach every member.
	feed(combined)
	if m.Steps != 3 {
		t.Errorf("Multi member Metrics.Steps = %d, want 3", m.Steps)
	}
	if len(f.Events()) == 0 {
		t.Error("Multi member Flight recorded no events")
	}
}

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	feed(m)

	if m.Model != "m" {
		t.Errorf("Model = %q, want m", m.Model)
	}
	if m.Steps != 3 || m.Decodes != 2 || m.DecodeHits != 1 || m.Activations != 1 {
		t.Errorf("Steps/Decodes/Hits/Activations = %d/%d/%d/%d, want 3/2/1/1",
			m.Steps, m.Decodes, m.DecodeHits, m.Activations)
	}
	if m.Writes != 1 || m.MemWrites != 1 {
		t.Errorf("Writes/MemWrites = %d/%d, want 1/1", m.Writes, m.MemWrites)
	}
	if len(m.Pipes) != 1 || len(m.Pipes[0].Stages) != 4 {
		t.Fatalf("topology not mirrored from OnAttach: %+v", m.Pipes)
	}
	p := m.Pipes[0]
	if p.Shifts != 1 || p.FullStalls != 0 || p.FullFlushes != 1 {
		t.Errorf("Shifts/FullStalls/FullFlushes = %d/%d/%d, want 1/0/1",
			p.Shifts, p.FullStalls, p.FullFlushes)
	}
	wantOcc := []uint64{2, 2, 1, 0}
	wantStall := []uint64{0, 1, 0, 0}
	wantExec := []uint64{1, 1, 1, 0}
	for i, s := range p.Stages {
		if s.OccupiedCycles != wantOcc[i] {
			t.Errorf("stage %s OccupiedCycles = %d, want %d", s.Stage, s.OccupiedCycles, wantOcc[i])
		}
		if s.StallCycles != wantStall[i] {
			t.Errorf("stage %s StallCycles = %d, want %d", s.Stage, s.StallCycles, wantStall[i])
		}
		// Whole-pipe flush counts one flush on every stage.
		if s.Flushes != 1 {
			t.Errorf("stage %s Flushes = %d, want 1", s.Stage, s.Flushes)
		}
		if s.Execs != wantExec[i] {
			t.Errorf("stage %s Execs = %d, want %d", s.Stage, s.Execs, wantExec[i])
		}
	}
	wb := p.Stages[3]
	if wb.RetiredPackets != 1 || wb.RetiredEntries != 2 {
		t.Errorf("WB RetiredPackets/Entries = %d/%d, want 1/2", wb.RetiredPackets, wb.RetiredEntries)
	}

	fetch := m.Ops["fetch"]
	if fetch == nil || fetch.Execs != 1 || fetch.Statements != 3 || fetch.ActiveSteps != 1 {
		t.Fatalf("op fetch = %+v, want Execs=1 Statements=3 ActiveSteps=1", fetch)
	}
	if fetch.StageCycles["pipe.FE"] != 1 {
		t.Errorf("fetch StageCycles[pipe.FE] = %d, want 1", fetch.StageCycles["pipe.FE"])
	}
	free := m.Ops["free"]
	if free == nil || free.Execs != 1 || len(free.StageCycles) != 0 {
		t.Errorf("unassigned op free = %+v, want 1 exec and no stage cycles", free)
	}
	alu := m.Ops["alu"]
	if alu.FirstStep != 2 || alu.LastStep != 2 {
		t.Errorf("alu First/LastStep = %d/%d, want 2/2", alu.FirstStep, alu.LastStep)
	}
}

func TestMetricsText(t *testing.T) {
	m := NewMetrics()
	feed(m)
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`lisa_steps_total{model="m"} 3`,
		`lisa_decodes_total{model="m"} 2`,
		`lisa_decode_cache_hits_total{model="m"} 1`,
		`lisa_stage_occupied_cycles_total{pipe="pipe",stage="FE"} 2`,
		`lisa_stage_stall_cycles_total{pipe="pipe",stage="DC"} 1`,
		`lisa_pipe_full_flushes_total{pipe="pipe"} 1`,
		`lisa_stage_retired_entries_total{pipe="pipe",stage="WB"} 2`,
		`lisa_op_execs_total{op="fetch"} 1`,
		`lisa_op_statements_total{op="fetch"} 3`,
		`lisa_op_stage_cycles_total{op="alu",stage="pipe.EX"} 1`,
		"# TYPE lisa_steps_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q", want)
		}
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	m := NewMetrics()
	feed(m)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Metrics
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if back.Steps != m.Steps || back.Decodes != m.Decodes || len(back.Pipes) != len(m.Pipes) {
		t.Errorf("round trip mismatch: %+v vs %+v", back, m)
	}
	if back.Ops["fetch"] == nil || back.Ops["fetch"].Statements != 3 {
		t.Errorf("op metrics lost in round trip: %+v", back.Ops)
	}
}

func TestChromeTracer(t *testing.T) {
	c := NewChromeTracer()
	feed(c)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != c.Len() {
		t.Errorf("traceEvents has %d events, Len() = %d", len(doc.TraceEvents), c.Len())
	}

	// One thread_name metadata track per stage plus the unassigned track.
	tracks := map[string]bool{}
	phases := map[string]int{}
	var flowPhases []string
	for _, e := range doc.TraceEvents {
		ph := e["ph"].(string)
		phases[ph]++
		if e["name"] == "thread_name" && ph == "M" {
			tracks[e["args"].(map[string]any)["name"].(string)] = true
		}
		if cat, _ := e["cat"].(string); cat == "packet" {
			flowPhases = append(flowPhases, ph)
		}
	}
	for _, want := range []string{"pipe.FE", "pipe.DC", "pipe.EX", "pipe.WB", "(unassigned ops)"} {
		if !tracks[want] {
			t.Errorf("missing track %q (have %v)", want, tracks)
		}
	}
	// 4 execs → 4 complete slices; decode/stall/flush/retire instants exist.
	if phases["X"] != 4 {
		t.Errorf("complete slices = %d, want 4", phases["X"])
	}
	if phases["i"] == 0 || phases["C"] == 0 {
		t.Errorf("missing instant or counter events: %v", phases)
	}
	// Packet 7 flows start → through → finish in order.
	want := []string{"s", "t", "t", "f"}
	if len(flowPhases) != len(want) {
		t.Fatalf("flow phases = %v, want %v", flowPhases, want)
	}
	for i := range want {
		if flowPhases[i] != want[i] {
			t.Errorf("flow phase[%d] = %q, want %q", i, flowPhases[i], want[i])
		}
	}
}

// TestChromeHazardArgs checks that attributed stalls and flushes carry
// their cause, resource, op and packet as instant args, whole-pipe events
// are labeled and fan out to every stage track, and plain (unattributed)
// OnStall instants stay args-free.
func TestChromeHazardArgs(t *testing.T) {
	c := NewChromeTracer()
	c.OnAttach("m", testPipes)
	c.OnStepBegin(0)
	c.OnStallInfo(StallInfo{
		Pipe: 0, Stage: 2, Cause: CauseData,
		Resource: "mem_wait", SourceOp: "ld", Packet: 7,
	})
	c.OnFlushInfo(StallInfo{Pipe: 0, Stage: -1, Cause: CauseControl, SourceOp: "br"})
	c.OnStall(0, 1) // legacy path: no attribution
	c.OnStepEnd(0)

	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	var stalls, flushes, bareStalls int
	for _, e := range doc.TraceEvents {
		if cat, _ := e["cat"].(string); cat != "hazard" {
			continue
		}
		args, _ := e["args"].(map[string]any)
		switch e["name"] {
		case "stall":
			if args == nil {
				bareStalls++
				continue
			}
			stalls++
			for k, want := range map[string]any{
				"cause": "data", "resource": "mem_wait", "op": "ld", "packet": "0x7",
			} {
				if args[k] != want {
					t.Errorf("stall args[%q] = %v, want %v", k, args[k], want)
				}
			}
		case "flush (whole pipe)":
			flushes++
			if args["cause"] != "control" || args["op"] != "br" || args["whole_pipe"] != true {
				t.Errorf("whole-pipe flush args = %v", args)
			}
		}
	}
	if stalls != 1 {
		t.Errorf("attributed stall instants = %d, want 1", stalls)
	}
	if bareStalls != 1 {
		t.Errorf("unattributed stall instants = %d, want 1 (legacy OnStall must stay args-free)", bareStalls)
	}
	// A whole-pipe flush lands on every stage track of the 4-stage pipe.
	if flushes != len(testPipes[0].Stages) {
		t.Errorf("whole-pipe flush instants = %d, want %d", flushes, len(testPipes[0].Stages))
	}
}

func TestChromeTracerEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewChromeTracer().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Errorf("empty trace must still contain a traceEvents array: %v", doc)
	}
}

func TestFlightWraparound(t *testing.T) {
	f := NewFlight(4)
	f.OnStepBegin(0)
	for i := 0; i < 10; i++ {
		f.OnExec("op", 0, i, uint64(i+1))
	}
	ev := f.Events()
	if len(ev) != 4 {
		t.Fatalf("ring of 4 returned %d events", len(ev))
	}
	// Oldest-first: the last 4 of 11 records (step-begin + 10 execs).
	for i, e := range ev {
		wantStage := int32(6 + i)
		if e.Kind != KindExec || e.Stage != wantStage {
			t.Errorf("event[%d] = %+v, want exec at stage %d", i, e, wantStage)
		}
	}

	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "last 4 events") || !strings.Contains(out, "exec op") {
		t.Errorf("Dump output unexpected:\n%s", out)
	}
}

func TestFlightEventStrings(t *testing.T) {
	f := NewFlight(64)
	feed(f)
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"#0 step-begin",
		"#0 decode insn word=0x1234 hit=false",
		"#1 decode insn word=0x1234 hit=true",
		"#0 activate add delay=1",
		"#0 exec fetch pipe=0 stage=0 packet=0x7",
		"#0 behavior fetch statements=3",
		"#0 write pc = 0x2",
		"#2 retire pipe=0 stage=3 packet=0x7 entries=2",
		"#2 write mem[0x10] = 0x2a",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q in:\n%s", want, out)
		}
	}
}

func TestFlightMinimumSize(t *testing.T) {
	f := NewFlight(0)
	f.OnShift(1)
	f.OnShift(2)
	ev := f.Events()
	if len(ev) != 1 || ev[0].Pipe != 2 {
		t.Errorf("size-0 ring should clamp to 1 and keep the newest event: %+v", ev)
	}
}

func TestNopAndStageTrack(t *testing.T) {
	// Nop must satisfy the full interface; feed must not panic.
	var o Observer = Nop{}
	feed(o)
	if got := StageTrack("pipe", "EX"); got != "pipe.EX" {
		t.Errorf("StageTrack = %q, want pipe.EX", got)
	}
}
