package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// StageMetrics accumulates counters for one pipeline stage.
type StageMetrics struct {
	Pipe           string `json:"pipe"`
	Stage          string `json:"stage"`
	OccupiedCycles uint64 `json:"occupied_cycles"`
	StallCycles    uint64 `json:"stall_cycles"`
	Flushes        uint64 `json:"flushes"`
	Execs          uint64 `json:"execs"`
	RetiredPackets uint64 `json:"retired_packets"`
	RetiredEntries uint64 `json:"retired_entries"`

	// StallCauseCycles splits StallCycles by hazard cause
	// ("data"/"control"/"structural"/"explicit") when the emitter provides
	// attribution; unattributed stalls appear only in StallCycles.
	StallCauseCycles map[string]uint64 `json:"stall_cause_cycles,omitempty"`
}

func (s *StageMetrics) stallCause(c Cause) {
	if c == CauseNone {
		return
	}
	if s.StallCauseCycles == nil {
		s.StallCauseCycles = map[string]uint64{}
	}
	s.StallCauseCycles[c.String()]++
}

// PipeMetrics accumulates counters for one pipeline.
type PipeMetrics struct {
	Name        string          `json:"name"`
	Stages      []*StageMetrics `json:"stages"`
	Shifts      uint64          `json:"shifts"`
	FullStalls  uint64          `json:"full_stalls"`  // stage -1 stall requests
	FullFlushes uint64          `json:"full_flushes"` // stage -1 flushes
}

// OpMetrics accumulates the execution histogram of one operation: how
// often it ran, how many control steps it was active in, and where its
// cycles went (per-stage attribution: each execution occupies its stage
// for one control step).
type OpMetrics struct {
	Name        string            `json:"name"`
	Execs       uint64            `json:"execs"`
	Statements  uint64            `json:"statements"`
	ActiveSteps uint64            `json:"active_steps"`
	FirstStep   uint64            `json:"first_step"`
	LastStep    uint64            `json:"last_step"`
	StageCycles map[string]uint64 `json:"stage_cycles,omitempty"`

	lastSeen uint64 // lastSeen = step+1 of last exec, 0 = never
}

// Metrics is an Observer collecting per-stage pipeline metrics and
// per-operation execution histograms. Zero value is ready to attach.
type Metrics struct {
	Model       string                `json:"model"`
	Steps       uint64                `json:"steps"`
	Decodes     uint64                `json:"decodes"`
	DecodeHits  uint64                `json:"decode_hits"`
	Activations uint64                `json:"activations"`
	Writes      uint64                `json:"resource_writes"`
	MemWrites   uint64                `json:"mem_writes"`
	Pipes       []*PipeMetrics        `json:"pipes"`
	Ops         map[string]*OpMetrics `json:"ops"`

	cur uint64 // current control step
}

// NewMetrics creates an empty metrics collector.
func NewMetrics() *Metrics { return &Metrics{Ops: map[string]*OpMetrics{}} }

func (m *Metrics) op(name string) *OpMetrics {
	if m.Ops == nil {
		m.Ops = map[string]*OpMetrics{}
	}
	o := m.Ops[name]
	if o == nil {
		o = &OpMetrics{Name: name, FirstStep: m.cur}
		m.Ops[name] = o
	}
	return o
}

func (m *Metrics) stage(pipe, stage int) *StageMetrics {
	if pipe < 0 || pipe >= len(m.Pipes) {
		return nil
	}
	p := m.Pipes[pipe]
	if stage < 0 || stage >= len(p.Stages) {
		return nil
	}
	return p.Stages[stage]
}

// OnAttach implements Observer.
func (m *Metrics) OnAttach(model string, pipes []PipeInfo) {
	m.Model = model
	if m.Ops == nil {
		m.Ops = map[string]*OpMetrics{}
	}
	m.Pipes = m.Pipes[:0]
	for _, pi := range pipes {
		pm := &PipeMetrics{Name: pi.Name}
		for _, st := range pi.Stages {
			pm.Stages = append(pm.Stages, &StageMetrics{Pipe: pi.Name, Stage: st})
		}
		m.Pipes = append(m.Pipes, pm)
	}
}

// OnStepBegin implements Observer.
func (m *Metrics) OnStepBegin(step uint64) { m.cur = step }

// OnStepEnd implements Observer.
func (m *Metrics) OnStepEnd(uint64) { m.Steps++ }

// OnOccupancy implements Observer.
func (m *Metrics) OnOccupancy(pipe int, occupied []bool) {
	if pipe < 0 || pipe >= len(m.Pipes) {
		return
	}
	stages := m.Pipes[pipe].Stages
	for i, occ := range occupied {
		if occ && i < len(stages) {
			stages[i].OccupiedCycles++
		}
	}
}

// OnDecode implements Observer.
func (m *Metrics) OnDecode(root string, word uint64, hit bool) {
	m.Decodes++
	if hit {
		m.DecodeHits++
	}
}

// OnActivate implements Observer.
func (m *Metrics) OnActivate(string, uint64) { m.Activations++ }

// OnExec implements Observer.
func (m *Metrics) OnExec(opName string, pipe, stage int, packet uint64) {
	o := m.op(opName)
	o.Execs++
	o.LastStep = m.cur
	if o.lastSeen != m.cur+1 {
		o.lastSeen = m.cur + 1
		o.ActiveSteps++
	}
	if s := m.stage(pipe, stage); s != nil {
		s.Execs++
		if o.StageCycles == nil {
			o.StageCycles = map[string]uint64{}
		}
		o.StageCycles[StageTrack(s.Pipe, s.Stage)]++
	}
}

// OnBehavior implements Observer.
func (m *Metrics) OnBehavior(opName string, statements uint64) {
	m.op(opName).Statements += statements
}

// OnStall implements Observer. A whole-pipe stall (stage -1) counts one
// stall cycle on every stage plus the pipe's FullStalls counter.
func (m *Metrics) OnStall(pipe, stage int) {
	if pipe < 0 || pipe >= len(m.Pipes) {
		return
	}
	p := m.Pipes[pipe]
	if stage < 0 {
		p.FullStalls++
		for _, s := range p.Stages {
			s.StallCycles++
		}
		return
	}
	if s := m.stage(pipe, stage); s != nil {
		s.StallCycles++
	}
}

// OnFlush implements Observer.
func (m *Metrics) OnFlush(pipe, stage int) {
	if pipe < 0 || pipe >= len(m.Pipes) {
		return
	}
	p := m.Pipes[pipe]
	if stage < 0 {
		p.FullFlushes++
		for _, s := range p.Stages {
			s.Flushes++
		}
		return
	}
	if s := m.stage(pipe, stage); s != nil {
		s.Flushes++
	}
}

// OnStallInfo implements HazardObserver: the plain per-stage counters are
// kept identical to the uncaused path, with the stall cycles additionally
// split by cause.
func (m *Metrics) OnStallInfo(info StallInfo) {
	m.OnStall(info.Pipe, info.Stage)
	if info.Pipe < 0 || info.Pipe >= len(m.Pipes) {
		return
	}
	if info.Stage < 0 {
		for _, s := range m.Pipes[info.Pipe].Stages {
			s.stallCause(info.Cause)
		}
		return
	}
	if s := m.stage(info.Pipe, info.Stage); s != nil {
		s.stallCause(info.Cause)
	}
}

// OnFlushInfo implements HazardObserver; flushes keep their single
// per-stage counter (their cause is control by definition).
func (m *Metrics) OnFlushInfo(info StallInfo) { m.OnFlush(info.Pipe, info.Stage) }

// OnShift implements Observer.
func (m *Metrics) OnShift(pipe int) {
	if pipe >= 0 && pipe < len(m.Pipes) {
		m.Pipes[pipe].Shifts++
	}
}

// OnRetire implements Observer.
func (m *Metrics) OnRetire(pipe, stage int, packet uint64, entries int) {
	if s := m.stage(pipe, stage); s != nil {
		s.RetiredPackets++
		s.RetiredEntries += uint64(entries)
	}
}

// OnResourceWrite implements Observer.
func (m *Metrics) OnResourceWrite(string, uint64) { m.Writes++ }

// OnMemWrite implements Observer.
func (m *Metrics) OnMemWrite(string, uint64, uint64) { m.MemWrites++ }

// sortedOps returns operation metrics sorted by name for stable output.
func (m *Metrics) sortedOps() []*OpMetrics {
	ops := make([]*OpMetrics, 0, len(m.Ops))
	for _, o := range m.Ops {
		ops = append(ops, o)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Name < ops[j].Name })
	return ops
}

// promEscape escapes a label value per the Prometheus text exposition
// format: backslash, double quote and newline. (fmt's %q escapes more —
// tabs, non-ASCII — in ways the exposition format does not define.)
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// WriteText emits the snapshot in Prometheus exposition format: a
// `# HELP` and `# TYPE` header per metric followed by its
// `name{labels} value` samples.
func (m *Metrics) WriteText(w io.Writer) error {
	ew := &errWriter{w: w}
	p := func(format string, args ...any) { fmt.Fprintf(ew, format, args...) }
	head := func(name, help string) {
		p("# HELP %s %s\n", name, help)
		p("# TYPE %s counter\n", name)
	}
	lbl := fmt.Sprintf(`{model="%s"}`, promEscape(m.Model))
	for _, c := range []struct {
		name, help string
		value      uint64
	}{
		{"lisa_steps_total", "Control steps simulated.", m.Steps},
		{"lisa_decodes_total", "Instruction decode attempts.", m.Decodes},
		{"lisa_decode_cache_hits_total", "Decodes served from the decode cache.", m.DecodeHits},
		{"lisa_activations_total", "Operation activations scheduled.", m.Activations},
		{"lisa_resource_writes_total", "Scalar resource writes.", m.Writes},
		{"lisa_mem_writes_total", "Memory element writes.", m.MemWrites},
	} {
		head(c.name, c.help)
		p("%s%s %d\n", c.name, lbl, c.value)
	}

	for _, c := range []struct {
		name, help string
		get        func(*PipeMetrics) uint64
	}{
		{"lisa_pipe_shifts_total", "Whole-pipeline shift operations.", func(pm *PipeMetrics) uint64 { return pm.Shifts }},
		{"lisa_pipe_full_stalls_total", "Whole-pipeline stall requests.", func(pm *PipeMetrics) uint64 { return pm.FullStalls }},
		{"lisa_pipe_full_flushes_total", "Whole-pipeline flushes.", func(pm *PipeMetrics) uint64 { return pm.FullFlushes }},
	} {
		head(c.name, c.help)
		for _, pm := range m.Pipes {
			p("%s{pipe=\"%s\"} %d\n", c.name, promEscape(pm.Name), c.get(pm))
		}
	}

	for _, counter := range []struct {
		name, help string
		get        func(*StageMetrics) uint64
	}{
		{"lisa_stage_occupied_cycles_total", "Control steps the stage held a packet.", func(s *StageMetrics) uint64 { return s.OccupiedCycles }},
		{"lisa_stage_stall_cycles_total", "Control steps the stage was stalled, split by hazard cause when attributed; the series without a cause label is the total.", func(s *StageMetrics) uint64 { return s.StallCycles }},
		{"lisa_stage_flushes_total", "Packets flushed from the stage.", func(s *StageMetrics) uint64 { return s.Flushes }},
		{"lisa_stage_execs_total", "Operation executions in the stage.", func(s *StageMetrics) uint64 { return s.Execs }},
		{"lisa_stage_retired_packets_total", "Packets retired from the stage.", func(s *StageMetrics) uint64 { return s.RetiredPackets }},
		{"lisa_stage_retired_entries_total", "Instruction entries retired from the stage.", func(s *StageMetrics) uint64 { return s.RetiredEntries }},
	} {
		head(counter.name, counter.help)
		for _, pm := range m.Pipes {
			for _, s := range pm.Stages {
				p("%s{pipe=\"%s\",stage=\"%s\"} %d\n", counter.name, promEscape(s.Pipe), promEscape(s.Stage), counter.get(s))
				if counter.name != "lisa_stage_stall_cycles_total" || len(s.StallCauseCycles) == 0 {
					continue
				}
				// Cause-labeled variants under the same metric header; the
				// uncaused series above stays the backward-compatible total.
				causes := make([]string, 0, len(s.StallCauseCycles))
				for c := range s.StallCauseCycles {
					causes = append(causes, c)
				}
				sort.Strings(causes)
				for _, c := range causes {
					p("%s{pipe=\"%s\",stage=\"%s\",cause=\"%s\"} %d\n",
						counter.name, promEscape(s.Pipe), promEscape(s.Stage), promEscape(c), s.StallCauseCycles[c])
				}
			}
		}
	}

	ops := m.sortedOps()
	head("lisa_op_execs_total", "Executions per operation.")
	for _, o := range ops {
		p("lisa_op_execs_total{op=\"%s\"} %d\n", promEscape(o.Name), o.Execs)
	}
	head("lisa_op_statements_total", "Behavior statements run per operation.")
	for _, o := range ops {
		if o.Statements > 0 {
			p("lisa_op_statements_total{op=\"%s\"} %d\n", promEscape(o.Name), o.Statements)
		}
	}
	head("lisa_op_active_steps_total", "Control steps each operation was active in.")
	for _, o := range ops {
		p("lisa_op_active_steps_total{op=\"%s\"} %d\n", promEscape(o.Name), o.ActiveSteps)
	}
	head("lisa_op_stage_cycles_total", "Per-stage cycle attribution of each operation.")
	for _, o := range ops {
		tracks := make([]string, 0, len(o.StageCycles))
		for t := range o.StageCycles {
			tracks = append(tracks, t)
		}
		sort.Strings(tracks)
		for _, t := range tracks {
			p("lisa_op_stage_cycles_total{op=\"%s\",stage=\"%s\"} %d\n", promEscape(o.Name), promEscape(t), o.StageCycles[t])
		}
	}
	return ew.err
}

// WriteJSON emits the snapshot as machine-readable JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// errWriter latches the first write error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, nil
}
