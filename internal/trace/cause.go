package trace

// Cause classifies why a stall or flush was requested. LISA pipelines have
// no hardware hazard detection — every stall and flush is requested by the
// model itself (paper §3.2.4) — so the cause is derived from the request's
// context: the guarding activation/behavior conditions and the resources
// they read.
type Cause uint8

// Hazard causes, ordered by attribution priority (see Rank).
const (
	// CauseNone marks an unattributed event (legacy emitters, or a request
	// whose context gave no signal).
	CauseNone Cause = iota
	// CauseData is a stall guarded by a condition reading a machine
	// resource — an interlock on that resource (memory wait states,
	// multicycle results, busy units).
	CauseData
	// CauseControl is any flush (redirections discard wrong-path work) or
	// a stall guarded by a condition that reads no resource.
	CauseControl
	// CauseStructural is an unconditional stall from an ACTIVATION section:
	// the model holds the stage every time the operation runs, i.e. the
	// stage itself lacks capacity.
	CauseStructural
	// CauseExplicit is an unconditional stall issued from BEHAVIOR code —
	// the model said "stall" with no inspectable condition around it.
	CauseExplicit

	// NumCauses bounds arrays indexed by Cause.
	NumCauses
)

func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseData:
		return "data"
	case CauseControl:
		return "control"
	case CauseStructural:
		return "structural"
	case CauseExplicit:
		return "explicit"
	default:
		return "none"
	}
}

// Rank orders causes for same-step attribution: when one penalty cycle saw
// several hazard events, the cycle is charged to the highest-ranked cause.
// Stall-like causes outrank control because a stall directly inserts the
// bubble being attributed, while a flush's bubbles follow on later steps.
func (c Cause) Rank() int {
	switch c {
	case CauseData:
		return 4
	case CauseStructural:
		return 3
	case CauseExplicit:
		return 2
	case CauseControl:
		return 1
	default:
		return 0
	}
}

// Causes lists the four real hazard causes in stable report order.
var Causes = [...]Cause{CauseData, CauseControl, CauseStructural, CauseExplicit}

// StallInfo carries the attribution context of one stall or flush request:
// where it landed (Pipe, Stage — stage -1 is the whole pipe), why
// (Cause, Resource for data hazards), and who asked (SourceOp, the packet
// carrying the requester). Zero values mean "unknown".
type StallInfo struct {
	Pipe     int
	Stage    int
	Cause    Cause
	SourceOp string // operation whose activation/behavior made the request
	Resource string // gating resource for data hazards, "" otherwise
	Packet   uint64 // packet id carrying the requester, 0 when none
}

// HazardObserver is the optional cause-aware extension of Observer.
// Implementations receive OnStallInfo/OnFlushInfo INSTEAD of the plain
// OnStall/OnFlush when events are delivered through EmitStall/EmitFlush,
// so a cause-aware observer must do its legacy bookkeeping inside the Info
// methods (typically by calling its own OnStall/OnFlush). Nop deliberately
// does not implement this interface: observers embedding Nop keep
// receiving the plain callbacks unless they opt in themselves.
type HazardObserver interface {
	OnStallInfo(StallInfo)
	OnFlushInfo(StallInfo)
}

// EmitStall delivers a stall event to o: cause-aware observers get the
// full StallInfo, legacy observers the classic (pipe, stage) pair. This is
// the compatibility shim every cause-annotated emitter goes through.
func EmitStall(o Observer, info StallInfo) {
	if h, ok := o.(HazardObserver); ok {
		h.OnStallInfo(info)
		return
	}
	o.OnStall(info.Pipe, info.Stage)
}

// EmitFlush is EmitStall for flush events.
func EmitFlush(o Observer, info StallInfo) {
	if h, ok := o.(HazardObserver); ok {
		h.OnFlushInfo(info)
		return
	}
	o.OnFlush(info.Pipe, info.Stage)
}

// OnStallInfo implements HazardObserver: the fanout re-dispatches through
// the shim so each member gets the richest form it understands.
func (m Multi) OnStallInfo(info StallInfo) {
	for _, o := range m {
		EmitStall(o, info)
	}
}

// OnFlushInfo implements HazardObserver.
func (m Multi) OnFlushInfo(info StallInfo) {
	for _, o := range m {
		EmitFlush(o, info)
	}
}
