package trace

import "testing"

// legacyAct records only the base-interface activation events, like the
// recorder and verifier do.
type legacyAct struct {
	Nop
	got []string
}

func (l *legacyAct) OnActivate(target string, delay uint64) {
	l.got = append(l.got, target)
}

// edgeAct additionally understands source-qualified edges.
type edgeAct struct {
	Nop
	legacy []string
	edges  [][2]string
}

func (e *edgeAct) OnActivate(target string, delay uint64) {
	e.legacy = append(e.legacy, target)
}

func (e *edgeAct) OnActivateEdge(source, target string, delay uint64) {
	e.edges = append(e.edges, [2]string{source, target})
}

// TestEmitActivateShim: edge-aware observers get the source-qualified
// event, legacy observers fall back to plain OnActivate, and the fallback
// keeps the .lrec wire format stable (the recorder never sees edges).
func TestEmitActivateShim(t *testing.T) {
	leg := &legacyAct{}
	EmitActivate(leg, "decode", "add", 2)
	if len(leg.got) != 1 || leg.got[0] != "add" {
		t.Fatalf("legacy observer got %v, want [add]", leg.got)
	}

	ea := &edgeAct{}
	EmitActivate(ea, "decode", "add", 2)
	if len(ea.edges) != 1 || ea.edges[0] != [2]string{"decode", "add"} {
		t.Fatalf("edge observer got edges %v", ea.edges)
	}
	if len(ea.legacy) != 0 {
		t.Fatalf("edge observer also got the legacy event: %v", ea.legacy)
	}
}

// TestMultiRedispatchesEdges: a fanout delivers the richest form each
// member understands, even when the fanout itself receives an edge event.
func TestMultiRedispatchesEdges(t *testing.T) {
	leg := &legacyAct{}
	ea := &edgeAct{}
	m := Fanout(leg, ea)
	EmitActivate(m, "decode", "mac", 0)
	if len(leg.got) != 1 || leg.got[0] != "mac" {
		t.Fatalf("legacy member got %v", leg.got)
	}
	if len(ea.edges) != 1 || ea.edges[0] != [2]string{"decode", "mac"} {
		t.Fatalf("edge member got %v", ea.edges)
	}
}

// TestNopIsNotEdgeObserver: Nop deliberately leaves the extension
// unimplemented so embedding it never swallows edge events silently —
// embedders opt in by defining OnActivateEdge themselves.
func TestNopIsNotEdgeObserver(t *testing.T) {
	var o Observer = Nop{}
	if _, ok := o.(EdgeObserver); ok {
		t.Fatal("Nop implements EdgeObserver; embedders would silently drop edges")
	}
}
