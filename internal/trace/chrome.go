package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeTracer is an Observer buffering Chrome trace-event JSON
// (loadable in chrome://tracing and Perfetto). Each pipeline stage is
// rendered as one named track (thread), each operation execution as a
// 1-cycle slice on its stage's track, and each pipeline packet as a flow
// connecting its executions across stages, making pipeline bubbles and
// stalls visible in a browser. One control step maps to 1µs of trace
// time.
type ChromeTracer struct {
	events []ChromeEvent
	tids   map[[2]int]int // (pipe, stage) → tid
	opsTid int            // track for unassigned operations
	pipes  []PipeInfo
	cur    uint64
	flows  map[uint64]bool // packet ids already started
}

// ChromeEvent is one Chrome trace-event JSON record (the subset of the
// trace-event format these tracers emit). It is exported so batch-level
// collectors (fleet.ChromeSpans) share one schema with the per-cycle
// tracer and can merge both into a single timeline document.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

const chromePid = 1

// NewChromeTracer creates an empty Chrome trace-event collector.
func NewChromeTracer() *ChromeTracer {
	return &ChromeTracer{tids: map[[2]int]int{}, flows: map[uint64]bool{}}
}

// OnAttach implements Observer: it creates one track per pipeline stage
// (plus one for unassigned operations) with stable names and ordering.
func (c *ChromeTracer) OnAttach(model string, pipes []PipeInfo) {
	c.pipes = pipes
	c.events = append(c.events, ChromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "lisa-sim " + model},
	})
	tid := 1
	for pi, p := range pipes {
		for si, st := range p.Stages {
			c.tids[[2]int{pi, si}] = tid
			c.meta(tid, StageTrack(p.Name, st))
			tid++
		}
	}
	c.opsTid = tid
	c.meta(tid, "(unassigned ops)")
}

func (c *ChromeTracer) meta(tid int, name string) {
	c.events = append(c.events,
		ChromeEvent{Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tid,
			Args: map[string]any{"name": name}},
		ChromeEvent{Name: "thread_sort_index", Ph: "M", Pid: chromePid, Tid: tid,
			Args: map[string]any{"sort_index": tid}},
	)
}

func (c *ChromeTracer) tid(pipe, stage int) int {
	if t, ok := c.tids[[2]int{pipe, stage}]; ok {
		return t
	}
	return c.opsTid
}

// stageTids returns the track ids a (pipe, stage) event maps to; a
// whole-pipe event (stage -1) maps to every stage track of the pipe.
func (c *ChromeTracer) stageTids(pipe, stage int) []int {
	if stage >= 0 {
		return []int{c.tid(pipe, stage)}
	}
	if pipe < 0 || pipe >= len(c.pipes) {
		return []int{c.opsTid}
	}
	tids := make([]int, 0, len(c.pipes[pipe].Stages))
	for si := range c.pipes[pipe].Stages {
		tids = append(tids, c.tid(pipe, si))
	}
	return tids
}

func (c *ChromeTracer) ts() float64 { return float64(c.cur) }

// OnStepBegin implements Observer.
func (c *ChromeTracer) OnStepBegin(step uint64) { c.cur = step }

// OnStepEnd implements Observer.
func (c *ChromeTracer) OnStepEnd(uint64) {}

// OnOccupancy implements Observer: one counter track per pipeline.
func (c *ChromeTracer) OnOccupancy(pipe int, occupied []bool) {
	if pipe < 0 || pipe >= len(c.pipes) {
		return
	}
	n := 0
	for _, occ := range occupied {
		if occ {
			n++
		}
	}
	c.events = append(c.events, ChromeEvent{
		Name: c.pipes[pipe].Name + " occupancy", Ph: "C", Ts: c.ts(),
		Pid: chromePid, Tid: 0, Args: map[string]any{"packets": n},
	})
}

// OnDecode implements Observer.
func (c *ChromeTracer) OnDecode(root string, word uint64, hit bool) {
	c.events = append(c.events, ChromeEvent{
		Name: "decode " + root, Cat: "decode", Ph: "i", Ts: c.ts(),
		Pid: chromePid, Tid: c.opsTid, Scope: "t",
		Args: map[string]any{"word": fmt.Sprintf("%#x", word), "cache_hit": hit},
	})
}

// OnActivate implements Observer (not rendered; activations are visible
// as the resulting exec slices).
func (c *ChromeTracer) OnActivate(string, uint64) {}

// OnExec implements Observer: a 1-cycle slice on the stage's track, with
// a flow event binding the slices of one packet together.
func (c *ChromeTracer) OnExec(op string, pipe, stage int, packet uint64) {
	tid := c.tid(pipe, stage)
	c.events = append(c.events, ChromeEvent{
		Name: op, Cat: "exec", Ph: "X", Ts: c.ts(), Dur: 1,
		Pid: chromePid, Tid: tid,
	})
	if packet == 0 {
		return
	}
	ph := "t"
	if !c.flows[packet] {
		c.flows[packet] = true
		ph = "s"
	}
	c.events = append(c.events, ChromeEvent{
		Name: "packet", Cat: "packet", Ph: ph, Ts: c.ts(),
		Pid: chromePid, Tid: tid, ID: fmt.Sprintf("%#x", packet),
	})
}

// OnBehavior implements Observer.
func (c *ChromeTracer) OnBehavior(string, uint64) {}

// OnStall implements Observer.
func (c *ChromeTracer) OnStall(pipe, stage int) {
	c.hazard("stall", StallInfo{Pipe: pipe, Stage: stage})
}

// OnFlush implements Observer.
func (c *ChromeTracer) OnFlush(pipe, stage int) {
	c.hazard("flush", StallInfo{Pipe: pipe, Stage: stage})
}

// OnStallInfo implements HazardObserver: the instant carries the hazard
// attribution as args so it is inspectable in the trace viewer.
func (c *ChromeTracer) OnStallInfo(info StallInfo) { c.hazard("stall", info) }

// OnFlushInfo implements HazardObserver.
func (c *ChromeTracer) OnFlushInfo(info StallInfo) { c.hazard("flush", info) }

// hazard emits one instant per affected stage track. Whole-pipe events
// (stage -1) land on every stage track, labeled as whole-pipe.
func (c *ChromeTracer) hazard(kind string, info StallInfo) {
	name := kind
	if info.Stage < 0 {
		name = kind + " (whole pipe)"
	}
	var args map[string]any
	if info.Cause != CauseNone || info.SourceOp != "" {
		args = map[string]any{"cause": info.Cause.String()}
		if info.Resource != "" {
			args["resource"] = info.Resource
		}
		if info.SourceOp != "" {
			args["op"] = info.SourceOp
		}
		if info.Packet != 0 {
			args["packet"] = fmt.Sprintf("%#x", info.Packet)
		}
		if info.Stage < 0 {
			args["whole_pipe"] = true
		}
	}
	for _, tid := range c.stageTids(info.Pipe, info.Stage) {
		c.events = append(c.events, ChromeEvent{
			Name: name, Cat: "hazard", Ph: "i", Ts: c.ts(),
			Pid: chromePid, Tid: tid, Scope: "t", Args: args,
		})
	}
}

// OnShift implements Observer.
func (c *ChromeTracer) OnShift(int) {}

// OnRetire implements Observer: the packet's flow terminates on the last
// stage's track.
func (c *ChromeTracer) OnRetire(pipe, stage int, packet uint64, entries int) {
	tid := c.tid(pipe, stage)
	c.events = append(c.events, ChromeEvent{
		Name: "retire", Cat: "retire", Ph: "i", Ts: c.ts(),
		Pid: chromePid, Tid: tid, Scope: "t",
		Args: map[string]any{"entries": entries},
	})
	if packet != 0 && c.flows[packet] {
		delete(c.flows, packet)
		c.events = append(c.events, ChromeEvent{
			Name: "packet", Cat: "packet", Ph: "f", BP: "e", Ts: c.ts(),
			Pid: chromePid, Tid: tid, ID: fmt.Sprintf("%#x", packet),
		})
	}
}

// OnResourceWrite implements Observer.
func (c *ChromeTracer) OnResourceWrite(string, uint64) {}

// OnMemWrite implements Observer.
func (c *ChromeTracer) OnMemWrite(string, uint64, uint64) {}

// AddCounter appends a counter sample ("ph":"C") at ts (control steps,
// i.e. µs of trace time). values becomes the counter's series — multiple
// keys render as stacked series on one counter track. This is the seam
// external producers (the hazard analyzer's occupancy timelines) use to
// add their curves to the same trace-viewer view as the spans.
func (c *ChromeTracer) AddCounter(name string, ts float64, values map[string]any) {
	c.events = append(c.events, ChromeEvent{
		Name: name, Ph: "C", Ts: ts, Pid: chromePid, Tid: 0, Args: values,
	})
}

// Len returns the number of buffered trace events.
func (c *ChromeTracer) Len() int { return len(c.events) }

// Events returns the buffered trace events. The slice is the tracer's
// own buffer — treat it as read-only and do not retain it across further
// observer callbacks. Merging collectors (fleet.ChromeSpans.AddSim) copy
// what they keep.
func (c *ChromeTracer) Events() []ChromeEvent { return c.events }

// WriteEventsJSON writes any event slice in the standard Chrome
// trace-event envelope, so merged documents and single-tracer documents
// are byte-compatible for trace viewers.
func WriteEventsJSON(w io.Writer, events []ChromeEvent) error {
	doc := struct {
		TraceEvents     []ChromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []ChromeEvent{}
	}
	return json.NewEncoder(w).Encode(doc)
}

// WriteJSON emits the buffered events as a Chrome trace-event JSON object.
func (c *ChromeTracer) WriteJSON(w io.Writer) error {
	return WriteEventsJSON(w, c.events)
}
