// Package trace is the structured observability layer of the golisa
// simulators. The simulator, the pipeline model and the behavior engine
// emit events into an Observer behind a nil-check fast path, so an
// uninstrumented simulation pays only a pointer comparison per hook site.
//
// Concrete observers shipped here:
//
//   - Metrics: per-stage pipeline counters (occupancy, stall cycles,
//     flushes, retire throughput) and per-operation execution/cycle
//     attribution, exportable as Prometheus-exposition-style text or JSON.
//   - ChromeTracer: a Chrome trace-event (chrome://tracing / Perfetto)
//     exporter rendering each pipeline stage as a track and each
//     instruction packet as a flow.
//   - Flight: a ring-buffer flight recorder keeping the last N events for
//     post-mortem dumps on simulator errors.
//
// All event payloads are primitive-typed (names, indices, words) so the
// package sits below every other simulation package in the import graph.
package trace

// PipeInfo describes one pipeline's topology, passed to OnAttach so
// observers can pre-create per-stage tracks and counters. The slice index
// of a PipeInfo is the pipe id used by all later events.
type PipeInfo struct {
	Name   string
	Stages []string
}

// StageTrack is the canonical signal/track name for a pipeline stage,
// shared by the VCD writer, the metrics exporter and the Chrome tracer so
// the same stage is labelled identically across all outputs.
func StageTrack(pipe, stage string) string { return pipe + "." + stage }

// Observer receives simulation events. Implementations must not retain
// slice arguments (they are reused across calls). pipe arguments are
// indices into the OnAttach topology; stage -1 means "whole pipeline";
// pipe -1 on OnExec means the operation is not assigned to any stage.
type Observer interface {
	// OnAttach is called once when the observer is attached to a
	// simulator, before any other event.
	OnAttach(model string, pipes []PipeInfo)
	// OnStepBegin marks the start of a control step.
	OnStepBegin(step uint64)
	// OnStepEnd marks the end of a control step (after commit/shift).
	OnStepEnd(step uint64)
	// OnOccupancy samples stage occupancy of one pipe at step begin.
	OnOccupancy(pipe int, occupied []bool)
	// OnDecode reports a coding-root decode of word (hit = decode cache).
	OnDecode(root string, word uint64, hit bool)
	// OnActivate reports a scheduled activation with its extra delay.
	OnActivate(target string, delay uint64)
	// OnExec reports one operation execution in its pipeline context.
	// packet is the id of the carrying pipeline packet, 0 when none.
	OnExec(op string, pipe, stage int, packet uint64)
	// OnBehavior reports the number of behavior statements an operation's
	// BEHAVIOR section executed (interpreted engines only; inclusive of
	// directly called operations).
	OnBehavior(op string, statements uint64)
	// OnStall reports a stage (or whole-pipe, stage -1) stall request.
	OnStall(pipe, stage int)
	// OnFlush reports a stage (or whole-pipe, stage -1) flush.
	OnFlush(pipe, stage int)
	// OnShift reports a granted pipeline shift.
	OnShift(pipe int)
	// OnRetire reports a packet retiring from the pipe's last stage.
	OnRetire(pipe, stage int, packet uint64, entries int)
	// OnResourceWrite reports a scalar resource write (program order,
	// before latch commit).
	OnResourceWrite(resource string, value uint64)
	// OnMemWrite reports a memory element write.
	OnMemWrite(resource string, addr, value uint64)
}

// Nop implements Observer with no-ops; embed it to implement only a
// subset of the interface.
type Nop struct{}

func (Nop) OnAttach(string, []PipeInfo)       {}
func (Nop) OnStepBegin(uint64)                {}
func (Nop) OnStepEnd(uint64)                  {}
func (Nop) OnOccupancy(int, []bool)           {}
func (Nop) OnDecode(string, uint64, bool)     {}
func (Nop) OnActivate(string, uint64)         {}
func (Nop) OnExec(string, int, int, uint64)   {}
func (Nop) OnBehavior(string, uint64)         {}
func (Nop) OnStall(int, int)                  {}
func (Nop) OnFlush(int, int)                  {}
func (Nop) OnShift(int)                       {}
func (Nop) OnRetire(int, int, uint64, int)    {}
func (Nop) OnResourceWrite(string, uint64)    {}
func (Nop) OnMemWrite(string, uint64, uint64) {}

// Multi fans every event out to each observer in order.
type Multi []Observer

// Fanout combines observers, flattening nested Multis and dropping nils.
// It returns nil when no observer remains and the sole observer when only
// one does, preserving the simulator's nil fast path.
func Fanout(obs ...Observer) Observer {
	var m Multi
	for _, o := range obs {
		switch v := o.(type) {
		case nil:
			continue
		case Multi:
			m = append(m, v...)
		default:
			m = append(m, o)
		}
	}
	switch len(m) {
	case 0:
		return nil
	case 1:
		return m[0]
	}
	return m
}

func (m Multi) OnAttach(model string, pipes []PipeInfo) {
	for _, o := range m {
		o.OnAttach(model, pipes)
	}
}
func (m Multi) OnStepBegin(step uint64) {
	for _, o := range m {
		o.OnStepBegin(step)
	}
}
func (m Multi) OnStepEnd(step uint64) {
	for _, o := range m {
		o.OnStepEnd(step)
	}
}
func (m Multi) OnOccupancy(pipe int, occupied []bool) {
	for _, o := range m {
		o.OnOccupancy(pipe, occupied)
	}
}
func (m Multi) OnDecode(root string, word uint64, hit bool) {
	for _, o := range m {
		o.OnDecode(root, word, hit)
	}
}
func (m Multi) OnActivate(target string, delay uint64) {
	for _, o := range m {
		o.OnActivate(target, delay)
	}
}
func (m Multi) OnExec(op string, pipe, stage int, packet uint64) {
	for _, o := range m {
		o.OnExec(op, pipe, stage, packet)
	}
}
func (m Multi) OnBehavior(op string, statements uint64) {
	for _, o := range m {
		o.OnBehavior(op, statements)
	}
}
func (m Multi) OnStall(pipe, stage int) {
	for _, o := range m {
		o.OnStall(pipe, stage)
	}
}
func (m Multi) OnFlush(pipe, stage int) {
	for _, o := range m {
		o.OnFlush(pipe, stage)
	}
}
func (m Multi) OnShift(pipe int) {
	for _, o := range m {
		o.OnShift(pipe)
	}
}
func (m Multi) OnRetire(pipe, stage int, packet uint64, entries int) {
	for _, o := range m {
		o.OnRetire(pipe, stage, packet, entries)
	}
}
func (m Multi) OnResourceWrite(resource string, value uint64) {
	for _, o := range m {
		o.OnResourceWrite(resource, value)
	}
}
func (m Multi) OnMemWrite(resource string, addr, value uint64) {
	for _, o := range m {
		o.OnMemWrite(resource, addr, value)
	}
}
