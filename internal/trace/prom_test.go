package trace_test

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"golisa/internal/core"
	"golisa/internal/sim"
	"golisa/internal/trace"
)

// The Prometheus text exposition format, parsed strictly:
// https://prometheus.io/docs/instrumenting/exposition_formats/
var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promMetric is one parsed metric family.
type promMetric struct {
	name    string
	help    bool
	typ     string
	samples int
}

// parseExposition validates an exposition-format payload line by line and
// returns the metric families in order of appearance. It fails the test on
// any spec violation instead of skipping malformed lines.
func parseExposition(t *testing.T, text string) []*promMetric {
	t.Helper()
	var fams []*promMetric
	byName := map[string]*promMetric{}
	family := func(name string) *promMetric {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &promMetric{name: name}
		byName[name] = f
		fams = append(fams, f)
		return f
	}
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("exposition must end in a line feed")
	}
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without docstring: %q", ln+1, line)
			}
			if !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: bad metric name %q", ln+1, name)
			}
			f := family(name)
			if f.help || f.typ != "" || f.samples > 0 {
				t.Fatalf("line %d: HELP for %q must precede TYPE and samples", ln+1, name)
			}
			f.help = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: TYPE without type: %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			f := family(name)
			if f.typ != "" {
				t.Fatalf("line %d: second TYPE for %q", ln+1, name)
			}
			if f.samples > 0 {
				t.Fatalf("line %d: TYPE for %q after its samples", ln+1, name)
			}
			f.typ = typ
		case strings.HasPrefix(line, "#"):
			continue // comment
		default:
			name := parseSample(t, ln+1, line)
			family(name).samples++
		}
	}
	return fams
}

// parseSample validates one `name{labels} value` line and returns the
// metric name.
func parseSample(t *testing.T, ln int, line string) string {
	t.Helper()
	name := line
	rest := ""
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name, rest = line[:i], line[i:]
	}
	if !metricNameRe.MatchString(name) {
		t.Fatalf("line %d: bad metric name in %q", ln, line)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label set: %q", ln, line)
		}
		parseLabels(t, ln, rest[1:end])
		rest = rest[end+1:]
	}
	value := strings.TrimPrefix(rest, " ")
	if value == rest {
		t.Fatalf("line %d: no space before value: %q", ln, line)
	}
	if _, err := strconv.ParseFloat(value, 64); err != nil {
		t.Fatalf("line %d: unparsable value %q: %v", ln, value, err)
	}
	return name
}

// parseLabels validates the inside of a {...} label set.
func parseLabels(t *testing.T, ln int, s string) {
	t.Helper()
	for s != "" {
		eq := strings.Index(s, "=")
		if eq < 0 {
			t.Fatalf("line %d: label without '=': %q", ln, s)
		}
		lname := s[:eq]
		if !labelNameRe.MatchString(lname) {
			t.Fatalf("line %d: bad label name %q", ln, lname)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			t.Fatalf("line %d: unquoted label value after %q", ln, lname)
		}
		s = s[1:]
		// Scan the escaped value: only \\, \" and \n escapes are legal.
		for {
			if s == "" {
				t.Fatalf("line %d: unterminated label value for %q", ln, lname)
			}
			switch s[0] {
			case '\\':
				if len(s) < 2 || !strings.ContainsRune(`\"n`, rune(s[1])) {
					t.Fatalf("line %d: illegal escape %q in label %q", ln, s[:2], lname)
				}
				s = s[2:]
				continue
			case '"':
				s = s[1:]
			default:
				s = s[1:]
				continue
			}
			break
		}
		if s == "" {
			return
		}
		if !strings.HasPrefix(s, ",") {
			t.Fatalf("line %d: expected ',' between labels, got %q", ln, s)
		}
		s = s[1:]
	}
}

// TestPrometheusExposition runs a real simulation and validates the whole
// /metrics payload against the exposition format: every family has HELP
// then TYPE then samples, names and labels are well-formed, and values
// parse as floats.
func TestPrometheusExposition(t *testing.T) {
	m, err := core.LoadBuiltin("simple16")
	if err != nil {
		t.Fatal(err)
	}
	src := `
        LDI A1, 3
loop:   SUB A1, A1, A2
        BNZ A1, loop
        NOP
        NOP
        HALT
`
	s, _, err := m.AssembleAndLoad(src, sim.Compiled)
	if err != nil {
		t.Fatal(err)
	}
	metrics := trace.NewMetrics()
	s.SetObserver(metrics)
	if _, err := s.Run(1000); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := metrics.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parseExposition(t, buf.String())
	if len(fams) == 0 {
		t.Fatal("no metric families parsed")
	}
	byName := map[string]*promMetric{}
	for _, f := range fams {
		if !f.help {
			t.Errorf("metric %s has no # HELP line", f.name)
		}
		if f.typ != "counter" {
			t.Errorf("metric %s has type %q, want counter", f.name, f.typ)
		}
		byName[f.name] = f
	}
	for _, want := range []string{
		"lisa_steps_total", "lisa_decodes_total", "lisa_op_execs_total",
		"lisa_stage_occupied_cycles_total", "lisa_pipe_shifts_total",
	} {
		f := byName[want]
		if f == nil || f.samples == 0 {
			t.Errorf("missing or sample-less metric %s", want)
		}
	}
}

// TestPromCauseLabels checks the cause-split stall exposition: attributed
// stalls add cause-labeled samples under the stall metric while the
// uncaused per-stage total remains, and the whole payload still passes the
// strict format parser.
func TestPromCauseLabels(t *testing.T) {
	metrics := trace.NewMetrics()
	metrics.OnAttach("m", []trace.PipeInfo{{Name: "p", Stages: []string{"FE", "EX"}}})
	metrics.OnStepBegin(0)
	metrics.OnStallInfo(trace.StallInfo{Pipe: 0, Stage: 1, Cause: trace.CauseData, Resource: "mem_wait"})
	metrics.OnStallInfo(trace.StallInfo{Pipe: 0, Stage: 1, Cause: trace.CauseControl})
	metrics.OnStallInfo(trace.StallInfo{Pipe: 0, Stage: 0}) // unattributed
	metrics.OnFlushInfo(trace.StallInfo{Pipe: 0, Stage: -1, Cause: trace.CauseControl})
	metrics.OnStepEnd(0)

	var buf bytes.Buffer
	if err := metrics.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	parseExposition(t, out)
	for _, want := range []string{
		`lisa_stage_stall_cycles_total{pipe="p",stage="EX"} 2`,
		`lisa_stage_stall_cycles_total{pipe="p",stage="EX",cause="data"} 1`,
		`lisa_stage_stall_cycles_total{pipe="p",stage="EX",cause="control"} 1`,
		`lisa_stage_stall_cycles_total{pipe="p",stage="FE"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// The unattributed FE stall must NOT grow a cause label.
	if strings.Contains(out, `stage="FE",cause`) {
		t.Errorf("unattributed stall gained a cause label:\n%s", out)
	}
}

// TestPromEscaping checks that hostile model/label names are escaped per
// the exposition format and survive the strict parser.
func TestPromEscaping(t *testing.T) {
	metrics := trace.NewMetrics()
	metrics.OnAttach("evil\"model\\with\nnewline", []trace.PipeInfo{
		{Name: "p\"0", Stages: []string{"S\\1"}},
	})
	metrics.OnStepBegin(0)
	metrics.OnExec("op\"x", 0, 0, 1)
	metrics.OnStepEnd(0)

	var buf bytes.Buffer
	if err := metrics.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	parseExposition(t, out)
	for _, want := range []string{
		`model="evil\"model\\with\nnewline"`,
		`pipe="p\"0"`,
		`op="op\"x"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing escaped label %q in:\n%s", want, out)
		}
	}
}
