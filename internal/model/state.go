package model

import (
	"fmt"

	"golisa/internal/bitvec"
)

// State is the architectural state of a machine: one bit-accurate value per
// scalar resource and one value slice per memory resource. It is the
// paper's "memory model" made executable.
type State struct {
	m       *Model
	Scalars []bitvec.Value
	Arrays  [][]bitvec.Value

	// Pending non-blocking writes to latch resources, applied in order by
	// Commit at the end of each control step (last write wins).
	pendingScalars []pendingScalar
	pendingElems   []pendingElem

	// OnWrite, when non-nil, observes every scalar resource write in
	// program order (at issue time, before latch commit). Alias writes
	// report the underlying resource with the merged value. OnWriteElem
	// does the same for memory element writes. Nil costs one comparison.
	OnWrite     func(r *Resource, v bitvec.Value)
	OnWriteElem func(r *Resource, addr uint64, v bitvec.Value)
}

type pendingScalar struct {
	r *Resource
	v bitvec.Value
}

type pendingElem struct {
	r    *Resource
	addr uint64
	v    bitvec.Value
}

// AssignSlots numbers the resources into state slots. Called once by sema
// after all resources are registered.
func (m *Model) AssignSlots() {
	scalar, array := 0, 0
	for _, r := range m.Resources {
		if r.IsAlias {
			r.Slot = -1
			continue
		}
		if r.IsMemory() {
			r.Slot = array
			array++
		} else {
			r.Slot = scalar
			scalar++
		}
	}
}

// NewState allocates zeroed state for the model.
func NewState(m *Model) *State {
	s := &State{m: m}
	for _, r := range m.Resources {
		if r.IsAlias {
			continue
		}
		if r.IsMemory() {
			arr := make([]bitvec.Value, r.Total())
			zero := bitvec.New(0, r.Width)
			for i := range arr {
				arr[i] = zero
			}
			s.Arrays = append(s.Arrays, arr)
		} else {
			s.Scalars = append(s.Scalars, bitvec.New(0, r.Width))
		}
	}
	return s
}

// Model returns the model this state belongs to.
func (s *State) Model() *Model { return s.m }

// Reset zeroes all resources and drops pending latch writes.
func (s *State) Reset() {
	s.pendingScalars = s.pendingScalars[:0]
	s.pendingElems = s.pendingElems[:0]
	for i, r := range s.m.Resources {
		_ = i
		if r.IsAlias {
			continue
		}
		if r.IsMemory() {
			zero := bitvec.New(0, r.Width)
			arr := s.Arrays[r.Slot]
			for j := range arr {
				arr[j] = zero
			}
		} else {
			s.Scalars[r.Slot] = bitvec.New(0, r.Width)
		}
	}
}

// Read returns the value of a scalar resource, resolving aliases.
func (s *State) Read(r *Resource) bitvec.Value {
	if r.IsAlias {
		base := s.Read(r.AliasOf)
		return base.Slice(r.AliasHi, r.AliasLo)
	}
	return s.Scalars[r.Slot]
}

// Write stores v into a scalar resource (truncated to its width),
// resolving aliases. Writes to LATCH resources are buffered until Commit.
func (s *State) Write(r *Resource, v bitvec.Value) {
	if r.IsAlias {
		base := s.Read(r.AliasOf)
		s.Write(r.AliasOf, base.InsertSlice(r.AliasHi, r.AliasLo, v.Uint()))
		return
	}
	if s.OnWrite != nil {
		s.OnWrite(r, v.Resize(r.Width))
	}
	if r.Latch {
		s.pendingScalars = append(s.pendingScalars, pendingScalar{r, v.Resize(r.Width)})
		return
	}
	s.Scalars[r.Slot] = v.Resize(r.Width)
}

// WriteNow stores v into a scalar resource bypassing latch buffering
// (used by reset and external pokes).
func (s *State) WriteNow(r *Resource, v bitvec.Value) {
	if r.IsAlias {
		base := s.Read(r.AliasOf)
		s.WriteNow(r.AliasOf, base.InsertSlice(r.AliasHi, r.AliasLo, v.Uint()))
		return
	}
	s.Scalars[r.Slot] = v.Resize(r.Width)
}

// Commit applies pending latch writes in program order (last write wins) and
// clears the buffers. The simulator calls it at the end of every control
// step, giving LATCH resources Verilog-style non-blocking semantics.
func (s *State) Commit() {
	for _, p := range s.pendingScalars {
		s.Scalars[p.r.Slot] = p.v
	}
	s.pendingScalars = s.pendingScalars[:0]
	for _, p := range s.pendingElems {
		if i, err := p.r.elemIndex(p.addr); err == nil {
			s.Arrays[p.r.Slot][i] = p.v
		}
	}
	s.pendingElems = s.pendingElems[:0]
}

// elemIndex translates an address to an element index with bounds checking.
func (r *Resource) elemIndex(addr uint64) (uint64, error) {
	if addr < r.Base {
		return 0, fmt.Errorf("%s: address %#x below base %#x", r.Name, addr, r.Base)
	}
	i := addr - r.Base
	if i >= r.Size {
		return 0, fmt.Errorf("%s: address %#x out of range (size %#x, base %#x)", r.Name, addr, r.Size, r.Base)
	}
	return i, nil
}

// ReadElem reads memory element at addr (bank 0 for banked memories).
func (s *State) ReadElem(r *Resource, addr uint64) (bitvec.Value, error) {
	i, err := r.elemIndex(addr)
	if err != nil {
		return bitvec.Value{}, err
	}
	return s.Arrays[r.Slot][i], nil
}

// WriteElem writes memory element at addr. Writes to LATCH memories are
// buffered until Commit.
func (s *State) WriteElem(r *Resource, addr uint64, v bitvec.Value) error {
	i, err := r.elemIndex(addr)
	if err != nil {
		return err
	}
	if s.OnWriteElem != nil {
		s.OnWriteElem(r, addr, v.Resize(r.Width))
	}
	if r.Latch {
		s.pendingElems = append(s.pendingElems, pendingElem{r, addr, v.Resize(r.Width)})
		return nil
	}
	s.Arrays[r.Slot][i] = v.Resize(r.Width)
	return nil
}

// ReadBanked reads element addr of the given bank of a banked memory.
func (s *State) ReadBanked(r *Resource, bank, addr uint64) (bitvec.Value, error) {
	if r.Banks <= 0 {
		return bitvec.Value{}, fmt.Errorf("%s: not a banked memory", r.Name)
	}
	if bank >= uint64(r.Banks) {
		return bitvec.Value{}, fmt.Errorf("%s: bank %d out of range (%d banks)", r.Name, bank, r.Banks)
	}
	i, err := r.elemIndex(addr)
	if err != nil {
		return bitvec.Value{}, err
	}
	return s.Arrays[r.Slot][bank*r.Size+i], nil
}

// WriteBanked writes element addr of the given bank of a banked memory.
func (s *State) WriteBanked(r *Resource, bank, addr uint64, v bitvec.Value) error {
	if r.Banks <= 0 {
		return fmt.Errorf("%s: not a banked memory", r.Name)
	}
	if bank >= uint64(r.Banks) {
		return fmt.Errorf("%s: bank %d out of range (%d banks)", r.Name, bank, r.Banks)
	}
	i, err := r.elemIndex(addr)
	if err != nil {
		return err
	}
	s.Arrays[r.Slot][bank*r.Size+i] = v.Resize(r.Width)
	return nil
}

// Clone deep-copies the state (used by the cross-simulator equivalence
// experiment).
func (s *State) Clone() *State {
	c := &State{m: s.m}
	c.Scalars = append([]bitvec.Value(nil), s.Scalars...)
	c.Arrays = make([][]bitvec.Value, len(s.Arrays))
	for i, a := range s.Arrays {
		c.Arrays[i] = append([]bitvec.Value(nil), a...)
	}
	return c
}

// Equal reports whether two states of structurally identical models hold
// identical values, returning the first differing resource name when they do
// not. States from two separately built instances of the same description
// compare fine (the cross-simulator equivalence experiment relies on this).
func (s *State) Equal(o *State) (bool, string) {
	if len(s.m.Resources) != len(o.m.Resources) {
		return false, "different models"
	}
	for i, r := range s.m.Resources {
		or := o.m.Resources[i]
		if r.Name != or.Name || r.Width != or.Width || r.Total() != or.Total() {
			return false, "different models"
		}
	}
	for _, r := range s.m.Resources {
		if r.IsAlias {
			continue
		}
		if r.IsMemory() {
			a, b := s.Arrays[r.Slot], o.Arrays[r.Slot]
			for i := range a {
				if a[i].Uint() != b[i].Uint() {
					return false, fmt.Sprintf("%s[%#x]", r.Name, uint64(i)+r.Base)
				}
			}
		} else if s.Scalars[r.Slot].Uint() != o.Scalars[r.Slot].Uint() {
			return false, r.Name
		}
	}
	return true, ""
}
