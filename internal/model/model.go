// Package model defines the intermediate database built from a parsed LISA
// description. The paper's tool flow is: parser → intermediate database →
// generated tools (assembler, disassembler, simulators); this package is
// that database.
//
// It holds the resolved memory/resource model (Resource, Pipeline), the
// operation database with flattened section variants (compile-time
// SWITCH/CASE structuring resolved into guarded Variants), decoded
// operation Instances, and the machine State operated on by simulation.
package model

import (
	"fmt"
	"sort"
	"strings"

	"golisa/internal/ast"
	"golisa/internal/bitvec"
)

// Model is the intermediate database for one machine description.
type Model struct {
	Name string

	Resources []*Resource
	Pipelines []*Pipeline

	// Operations in declaration order plus by-name index.
	OpList []*Operation
	Ops    map[string]*Operation

	resByName  map[string]*Resource
	pipeByName map[string]*Pipeline

	// SourceLines is the number of non-blank source lines of the parsed
	// description, recorded for the paper's model-statistics experiment.
	SourceLines int
}

// NewModel creates an empty database.
func NewModel(name string) *Model {
	return &Model{
		Name:       name,
		Ops:        map[string]*Operation{},
		resByName:  map[string]*Resource{},
		pipeByName: map[string]*Pipeline{},
	}
}

// Resource is a resolved storage object: a register, counter or memory.
// Scalars live in State.Scalars[Slot]; memories in State.Arrays[Slot].
type Resource struct {
	Name   string
	Class  ast.ResourceClass
	Type   ast.TypeSpec
	Width  int
	Signed bool

	// Extent. Size==0 means scalar. Base is the first valid address
	// (PROGRAM_MEMORY int m[0x100..0xffff] has Base 0x100).
	Size  uint64
	Base  uint64
	Banks int // >0: banked memory, Size elements per bank

	Wait int // access wait states (memory interface modelling)

	// Latch resources have non-blocking write semantics: State.Write
	// buffers the value until State.Commit at the end of the control step.
	Latch bool

	IsAlias bool
	AliasOf *Resource
	AliasHi int
	AliasLo int

	Slot int // index into State.Scalars or State.Arrays
}

// IsMemory reports whether the resource has an array extent.
func (r *Resource) IsMemory() bool { return r.Size > 0 }

// Total returns the total number of elements across banks.
func (r *Resource) Total() uint64 {
	if r.Banks > 0 {
		return r.Size * uint64(r.Banks)
	}
	return r.Size
}

// Pipeline is a resolved pipeline declaration.
type Pipeline struct {
	Name   string
	Stages []string
	Index  int // position in Model.Pipelines

	stageIdx map[string]int
}

// StageIndex returns the index of the named stage, or -1.
func (p *Pipeline) StageIndex(name string) int {
	if i, ok := p.stageIdx[name]; ok {
		return i
	}
	return -1
}

// Depth returns the number of stages.
func (p *Pipeline) Depth() int { return len(p.Stages) }

// AddResource registers a resource. It returns an error on duplicates.
func (m *Model) AddResource(r *Resource) error {
	if _, dup := m.resByName[r.Name]; dup {
		return fmt.Errorf("duplicate resource %q", r.Name)
	}
	m.Resources = append(m.Resources, r)
	m.resByName[r.Name] = r
	return nil
}

// Resource looks up a resource by name.
func (m *Model) Resource(name string) *Resource { return m.resByName[name] }

// AddPipeline registers a pipeline. It returns an error on duplicates.
func (m *Model) AddPipeline(p *Pipeline) error {
	if _, dup := m.pipeByName[p.Name]; dup {
		return fmt.Errorf("duplicate pipeline %q", p.Name)
	}
	if _, dup := m.resByName[p.Name]; dup {
		return fmt.Errorf("pipeline %q collides with resource of the same name", p.Name)
	}
	p.Index = len(m.Pipelines)
	p.stageIdx = make(map[string]int, len(p.Stages))
	for i, s := range p.Stages {
		if _, dup := p.stageIdx[s]; dup {
			return fmt.Errorf("pipeline %q: duplicate stage %q", p.Name, s)
		}
		p.stageIdx[s] = i
	}
	m.Pipelines = append(m.Pipelines, p)
	m.pipeByName[p.Name] = p
	return nil
}

// Pipeline looks up a pipeline by name.
func (m *Model) Pipeline(name string) *Pipeline { return m.pipeByName[name] }

// AddOperation registers an operation. It returns an error on duplicates.
func (m *Model) AddOperation(op *Operation) error {
	if _, dup := m.Ops[op.Name]; dup {
		return fmt.Errorf("duplicate operation %q", op.Name)
	}
	m.OpList = append(m.OpList, op)
	m.Ops[op.Name] = op
	return nil
}

// Operation is one resolved LISA operation.
type Operation struct {
	Name  string
	Src   *ast.Operation
	Alias bool

	// Pipeline-stage assignment (IN pipe.stage); Pipe nil when unassigned.
	Pipe     *Pipeline
	StageIdx int

	// Declared symbols.
	Groups map[string]*Group
	Labels map[string]bool
	Refs   map[string]*Operation // REFERENCE decls, resolved

	// Variants are the flattened section sets after compile-time SWITCH/IF
	// structuring. There is always at least one. Guards pin group-member
	// selections; the first variant whose guards match a binding wins.
	Variants []*Variant

	// CodingWidth is the total bit width of the operation's coding, or 0
	// when the operation has no coding (or is a coding root).
	CodingWidth int

	// IsCodingRoot marks operations whose CODING compares a resource
	// against the coding tree (paper Example 3).
	IsCodingRoot bool
	// RootResource is the compared resource for coding roots.
	RootResource *Resource
}

// HasStage reports whether the operation is assigned to a pipeline stage.
func (o *Operation) HasStage() bool { return o.Pipe != nil }

// Group is a named list of alternative operations (nml "or-rules").
type Group struct {
	Name    string
	Owner   *Operation
	Members []*Operation
}

// MemberIndex returns the position of op in the group, or -1.
func (g *Group) MemberIndex(op *Operation) int {
	for i, m := range g.Members {
		if m == op {
			return i
		}
	}
	return -1
}

// Guard pins one group of an operation to (or away from) a specific member.
type Guard struct {
	Group  string
	Member *Operation
	Negate bool
}

// Variant is one flattened section set of an operation.
type Variant struct {
	Guards []Guard

	Coding     *ast.CodingSec
	Syntax     *ast.SyntaxSec
	Behavior   *ast.BehaviorSec
	Expression *ast.ExpressionSec
	Activation *ast.ActivationSec
	Semantics  string
	Custom     map[string]string
}

// Matches reports whether the variant's guards are satisfied by the given
// group-member selection.
func (v *Variant) Matches(sel map[string]*Operation) bool {
	for _, g := range v.Guards {
		m, ok := sel[g.Group]
		if !ok {
			return false
		}
		if g.Negate == (m == g.Member) {
			return false
		}
	}
	return true
}

// SelectVariant returns the first variant whose guards are satisfied by sel,
// or nil.
func (o *Operation) SelectVariant(sel map[string]*Operation) *Variant {
	for _, v := range o.Variants {
		if v.Matches(sel) {
			return v
		}
	}
	return nil
}

// Stats summarizes a model for the paper's §4 complexity table.
type Stats struct {
	ModelName      string
	Resources      int
	Pipelines      int
	PipelineStages int
	Operations     int
	Instructions   int // operations reachable from the coding root with syntax
	Aliases        int
	SourceLines    int
	LinesPerOp     float64

	// Coding-tree shape: number of coding roots, the maximum reference
	// depth of the decode tree below any root, and the distribution of
	// per-operation coding widths (operations with a CODING section).
	CodingRoots    int
	CodingDepth    int
	CodedOps       int
	MinCodingWidth int
	MaxCodingWidth int
	AvgCodingWidth float64
}

// ComputeStats derives the §4 statistics from the database.
func (m *Model) ComputeStats() Stats {
	s := Stats{
		ModelName:   m.Name,
		Resources:   len(m.Resources),
		Pipelines:   len(m.Pipelines),
		Operations:  len(m.OpList),
		SourceLines: m.SourceLines,
	}
	for _, p := range m.Pipelines {
		s.PipelineStages += len(p.Stages)
	}
	// Instructions are the direct members of the coding roots' groups (the
	// machine's instruction set) that carry a mnemonic syntax; operand
	// operations referenced deeper in the tree are not instructions.
	counted := map[*Operation]bool{}
	for _, root := range m.OpList {
		if !root.IsCodingRoot {
			continue
		}
		for _, g := range root.Groups {
			for _, op := range g.Members {
				if counted[op] {
					continue
				}
				counted[op] = true
				if !hasMnemonic(op) {
					continue
				}
				if op.Alias {
					s.Aliases++
				} else {
					s.Instructions++
				}
			}
		}
	}
	if s.Operations > 0 {
		s.LinesPerOp = float64(s.SourceLines) / float64(s.Operations)
	}
	var widthSum int
	for _, op := range m.OpList {
		if op.IsCodingRoot {
			s.CodingRoots++
			if d := m.codingDepth(op, map[*Operation]bool{}); d > s.CodingDepth {
				s.CodingDepth = d
			}
		}
		if op.CodingWidth <= 0 {
			continue
		}
		s.CodedOps++
		widthSum += op.CodingWidth
		if s.MinCodingWidth == 0 || op.CodingWidth < s.MinCodingWidth {
			s.MinCodingWidth = op.CodingWidth
		}
		if op.CodingWidth > s.MaxCodingWidth {
			s.MaxCodingWidth = op.CodingWidth
		}
	}
	if s.CodedOps > 0 {
		s.AvgCodingWidth = float64(widthSum) / float64(s.CodedOps)
	}
	return s
}

// codingDepth returns the maximum depth of the coding reference tree rooted
// at op: 1 for an operation whose coding references no other operation,
// 1 + max(children) otherwise. The visiting set breaks reference cycles.
func (m *Model) codingDepth(op *Operation, visiting map[*Operation]bool) int {
	if visiting[op] {
		return 0
	}
	visiting[op] = true
	defer delete(visiting, op)
	deepest := 0
	for _, v := range op.Variants {
		if v.Coding == nil {
			continue
		}
		for _, e := range v.Coding.Elems {
			ref, ok := e.(*ast.CodingRef)
			if !ok {
				continue
			}
			if g, isGroup := op.Groups[ref.Name]; isGroup {
				for _, mem := range g.Members {
					if d := m.codingDepth(mem, visiting); d > deepest {
						deepest = d
					}
				}
			} else if child := m.Ops[ref.Name]; child != nil {
				if d := m.codingDepth(child, visiting); d > deepest {
					deepest = d
				}
			}
		}
	}
	return 1 + deepest
}

// hasMnemonic reports whether any variant's syntax contains a literal
// beginning with a letter (the mnemonic).
func hasMnemonic(op *Operation) bool {
	for _, v := range op.Variants {
		if v.Syntax == nil {
			continue
		}
		for _, e := range v.Syntax.Elems {
			if str, ok := e.(*ast.SyntaxString); ok && str.Text != "" {
				c := str.Text[0]
				if (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') {
					return true
				}
			}
		}
	}
	return false
}

// String renders the stats as the §4-style summary line.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d resources, %d operations, %d instructions + %d aliases, %d lines (%.1f lines/op)",
		s.ModelName, s.Resources, s.Operations, s.Instructions, s.Aliases, s.SourceLines, s.LinesPerOp)
}

// SortedCustomSections returns the union of custom-section names used across
// all operations, sorted (used by the documentation generator).
func (m *Model) SortedCustomSections() []string {
	set := map[string]bool{}
	for _, op := range m.OpList {
		for _, v := range op.Variants {
			for name := range v.Custom {
				set[name] = true
			}
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Instance is a bound occurrence of an operation: group selections, child
// instances and decoded label field values. Decoding builds instance trees
// from instruction words; the assembler builds them from assembly text; the
// simulator executes them.
//
// Instances are immutable once bound: after construction (and at the
// latest after ResolveVariant) no field is written again, which is what
// makes cached instances shareable across control steps and — via
// sim.Artifact — across simulators on different goroutines. The only
// post-construction write anywhere is ResolveVariant's caching of the
// variant selection; instances placed in shared caches must have their
// variants resolved eagerly (the decoder and artifact builder both do)
// so that lazy resolution never races.
type Instance struct {
	Op      *Operation
	Variant *Variant

	// Labels holds decoded/parsed operand field values by label name.
	Labels map[string]bitvec.Value

	// Bindings maps group names and reference names to child instances.
	Bindings map[string]*Instance
}

// NewInstance creates an instance of op with its variant left unselected.
func NewInstance(op *Operation) *Instance {
	return &Instance{
		Op:       op,
		Labels:   map[string]bitvec.Value{},
		Bindings: map[string]*Instance{},
	}
}

// Selection returns the group→member mapping implied by the bindings,
// used to select variants.
func (in *Instance) Selection() map[string]*Operation {
	sel := make(map[string]*Operation, len(in.Bindings))
	for name, child := range in.Bindings {
		if child != nil {
			sel[name] = child.Op
		}
	}
	return sel
}

// ResolveVariant selects and caches the variant matching the current
// bindings. It returns an error when no variant matches.
func (in *Instance) ResolveVariant() error {
	v := in.Op.SelectVariant(in.Selection())
	if v == nil {
		return fmt.Errorf("operation %s: no variant matches binding", in.Op.Name)
	}
	in.Variant = v
	return nil
}

// String renders the instance tree compactly for diagnostics.
func (in *Instance) String() string {
	var sb strings.Builder
	in.write(&sb)
	return sb.String()
}

func (in *Instance) write(sb *strings.Builder) {
	sb.WriteString(in.Op.Name)
	if len(in.Labels) == 0 && len(in.Bindings) == 0 {
		return
	}
	sb.WriteByte('(')
	first := true
	names := make([]string, 0, len(in.Bindings))
	for n := range in.Bindings {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(sb, "%s=", n)
		in.Bindings[n].write(sb)
	}
	labels := make([]string, 0, len(in.Labels))
	for n := range in.Labels {
		labels = append(labels, n)
	}
	sort.Strings(labels)
	for _, n := range labels {
		if !first {
			sb.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(sb, "%s=%d", n, in.Labels[n].Uint())
	}
	sb.WriteByte(')')
}
