package model

import (
	"strings"
	"testing"
	"testing/quick"

	"golisa/internal/ast"
	"golisa/internal/bitvec"
)

func newTestModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel("t")
	add := func(r *Resource) {
		t.Helper()
		if err := m.AddResource(r); err != nil {
			t.Fatal(err)
		}
	}
	add(&Resource{Name: "pc", Width: 32, Signed: true, Type: ast.TypeSpec{Kind: ast.TypeInt, Width: 32}})
	add(&Resource{Name: "acc", Width: 40, Type: ast.TypeSpec{Kind: ast.TypeBit, Width: 40}})
	add(&Resource{Name: "mem", Width: 32, Size: 16, Type: ast.TypeSpec{Kind: ast.TypeInt, Width: 32}})
	add(&Resource{Name: "rom", Width: 16, Size: 8, Base: 0x100, Type: ast.TypeSpec{Kind: ast.TypeBit, Width: 16}})
	add(&Resource{Name: "bank", Width: 8, Size: 4, Banks: 2, Type: ast.TypeSpec{Kind: ast.TypeBit, Width: 8}})
	m.AssignSlots()
	return m
}

func TestDuplicateRegistrationErrors(t *testing.T) {
	m := newTestModel(t)
	if err := m.AddResource(&Resource{Name: "pc"}); err == nil {
		t.Error("duplicate resource accepted")
	}
	if err := m.AddPipeline(&Pipeline{Name: "p", Stages: []string{"A"}}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddPipeline(&Pipeline{Name: "p", Stages: []string{"A"}}); err == nil {
		t.Error("duplicate pipeline accepted")
	}
	if err := m.AddPipeline(&Pipeline{Name: "pc", Stages: []string{"A"}}); err == nil {
		t.Error("pipeline/resource name collision accepted")
	}
	if err := m.AddPipeline(&Pipeline{Name: "q", Stages: []string{"A", "A"}}); err == nil {
		t.Error("duplicate stage accepted")
	}
	op := &Operation{Name: "op"}
	if err := m.AddOperation(op); err != nil {
		t.Fatal(err)
	}
	if err := m.AddOperation(&Operation{Name: "op"}); err == nil {
		t.Error("duplicate operation accepted")
	}
}

func TestPipelineStageIndex(t *testing.T) {
	m := newTestModel(t)
	p := &Pipeline{Name: "pipe", Stages: []string{"FE", "DC", "EX"}}
	if err := m.AddPipeline(p); err != nil {
		t.Fatal(err)
	}
	if p.StageIndex("DC") != 1 || p.StageIndex("EX") != 2 {
		t.Error("stage index wrong")
	}
	if p.StageIndex("XX") != -1 {
		t.Error("unknown stage should be -1")
	}
	if p.Depth() != 3 {
		t.Error("depth")
	}
}

func TestStateMemoryBounds(t *testing.T) {
	m := newTestModel(t)
	s := NewState(m)
	rom := m.Resource("rom")
	if _, err := s.ReadElem(rom, 0x0ff); err == nil {
		t.Error("below-base read accepted")
	}
	if _, err := s.ReadElem(rom, 0x108); err == nil {
		t.Error("above-range read accepted")
	}
	if err := s.WriteElem(rom, 0x107, bitvec.New(7, 16)); err != nil {
		t.Error(err)
	}
	v, err := s.ReadElem(rom, 0x107)
	if err != nil || v.Uint() != 7 {
		t.Errorf("ranged rw: %v %v", v, err)
	}
	bank := m.Resource("bank")
	if _, err := s.ReadBanked(bank, 2, 0); err == nil {
		t.Error("bank overflow accepted")
	}
	if _, err := s.ReadBanked(m.Resource("mem"), 0, 0); err == nil {
		t.Error("banked access on flat memory accepted")
	}
	if err := s.WriteBanked(bank, 1, 3, bitvec.New(9, 8)); err != nil {
		t.Error(err)
	}
	v, _ = s.ReadBanked(bank, 1, 3)
	if v.Uint() != 9 {
		t.Errorf("banked rw: %v", v)
	}
}

func TestStateCloneIsDeep(t *testing.T) {
	m := newTestModel(t)
	s := NewState(m)
	s.Write(m.Resource("pc"), bitvec.New(5, 32))
	_ = s.WriteElem(m.Resource("mem"), 3, bitvec.New(7, 32))
	c := s.Clone()
	if eq, _ := s.Equal(c); !eq {
		t.Fatal("clone not equal")
	}
	_ = c.WriteElem(m.Resource("mem"), 3, bitvec.New(8, 32))
	if eq, diff := s.Equal(c); eq || !strings.Contains(diff, "mem") {
		t.Errorf("clone aliased original: eq=%v diff=%s", eq, diff)
	}
	c2 := s.Clone()
	c2.Write(m.Resource("pc"), bitvec.New(6, 32))
	if eq, diff := s.Equal(c2); eq || diff != "pc" {
		t.Errorf("scalar diff not found: %v %s", eq, diff)
	}
}

func TestLatchCommitOrder(t *testing.T) {
	m := NewModel("latch")
	r := &Resource{Name: "l", Width: 32, Latch: true, Type: ast.TypeSpec{Kind: ast.TypeInt, Width: 32}}
	if err := m.AddResource(r); err != nil {
		t.Fatal(err)
	}
	m.AssignSlots()
	s := NewState(m)
	s.Write(r, bitvec.New(1, 32))
	s.Write(r, bitvec.New(2, 32))
	if got := s.Read(r).Uint(); got != 0 {
		t.Errorf("latched write visible before commit: %d", got)
	}
	s.Commit()
	if got := s.Read(r).Uint(); got != 2 {
		t.Errorf("last write should win: %d", got)
	}
	s.Write(r, bitvec.New(3, 32))
	s.Reset()
	s.Commit()
	if got := s.Read(r).Uint(); got != 0 {
		t.Errorf("reset should drop pending writes: %d", got)
	}
	// WriteNow bypasses the latch.
	s.WriteNow(r, bitvec.New(9, 32))
	if got := s.Read(r).Uint(); got != 9 {
		t.Errorf("WriteNow deferred: %d", got)
	}
}

func TestVariantGuardMatching(t *testing.T) {
	a := &Operation{Name: "a"}
	b := &Operation{Name: "b"}
	op := &Operation{Name: "op"}
	op.Variants = []*Variant{
		{Guards: []Guard{{Group: "g", Member: a}}},
		{Guards: []Guard{{Group: "g", Member: a, Negate: true}}},
		{},
	}
	if v := op.SelectVariant(map[string]*Operation{"g": a}); v != op.Variants[0] {
		t.Error("positive guard failed")
	}
	if v := op.SelectVariant(map[string]*Operation{"g": b}); v != op.Variants[1] {
		t.Error("negated guard failed")
	}
	if v := op.SelectVariant(map[string]*Operation{}); v != op.Variants[2] {
		t.Error("unguarded fallback failed")
	}
}

func TestGroupMemberIndex(t *testing.T) {
	a, b := &Operation{Name: "a"}, &Operation{Name: "b"}
	g := &Group{Name: "g", Members: []*Operation{a, b}}
	if g.MemberIndex(a) != 0 || g.MemberIndex(b) != 1 {
		t.Error("member index")
	}
	if g.MemberIndex(&Operation{Name: "c"}) != -1 {
		t.Error("non-member should be -1")
	}
}

func TestInstanceString(t *testing.T) {
	op := &Operation{Name: "add"}
	reg := &Operation{Name: "register"}
	in := NewInstance(op)
	child := NewInstance(reg)
	child.Labels["index"] = bitvec.New(4, 4)
	in.Bindings["Dest"] = child
	s := in.String()
	if !strings.Contains(s, "add(") || !strings.Contains(s, "Dest=register(index=4)") {
		t.Errorf("instance string: %q", s)
	}
	bare := NewInstance(op)
	if bare.String() != "add" {
		t.Errorf("bare instance: %q", bare.String())
	}
}

func TestInstanceResolveVariantError(t *testing.T) {
	a := &Operation{Name: "a"}
	op := &Operation{Name: "op"}
	op.Variants = []*Variant{{Guards: []Guard{{Group: "g", Member: a}}}}
	in := NewInstance(op)
	if err := in.ResolveVariant(); err == nil {
		t.Error("unresolvable variant accepted")
	}
}

func TestStatePropertyScalarRoundTrip(t *testing.T) {
	m := newTestModel(t)
	s := NewState(m)
	acc := m.Resource("acc")
	f := func(v uint64) bool {
		s.Write(acc, bitvec.New(v, 64))
		return s.Read(acc).Uint() == v&bitvec.Mask(40)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatePropertyMemRoundTrip(t *testing.T) {
	m := newTestModel(t)
	s := NewState(m)
	mem := m.Resource("mem")
	f := func(addr uint8, v uint64) bool {
		a := uint64(addr) % 16
		if err := s.WriteElem(mem, a, bitvec.New(v, 64)); err != nil {
			return false
		}
		got, err := s.ReadElem(mem, a)
		return err == nil && got.Uint() == v&bitvec.Mask(32)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceTotalAndSlotAssignment(t *testing.T) {
	m := newTestModel(t)
	if m.Resource("bank").Total() != 8 {
		t.Error("banked total")
	}
	if m.Resource("mem").Total() != 16 {
		t.Error("flat total")
	}
	// slots: scalars pc, acc → 0,1; arrays mem, rom, bank → 0,1,2
	if m.Resource("pc").Slot != 0 || m.Resource("acc").Slot != 1 {
		t.Error("scalar slots")
	}
	if m.Resource("mem").Slot != 0 || m.Resource("rom").Slot != 1 || m.Resource("bank").Slot != 2 {
		t.Error("array slots")
	}
}
