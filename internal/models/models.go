// Package models embeds the LISA descriptions shipped with golisa: the
// simple16 quickstart DSP and the TMS320C62xx-subset VLIW model that
// reproduces the paper's case study (§4).
package models

import (
	_ "embed"
)

// Simple16 is the LISA source of the quickstart DSP model: two register
// files with side-bit selection (paper Examples 4/6), a 40-bit MAC
// accumulator, and a 4-stage FE DC EX WB pipeline.
//
//go:embed simple16.lisa
var Simple16 string

// C62x is the LISA source of the TMS320C6201-subset VLIW model: the
// paper's fetch_pipe {PG PS PW PR DP} and execute_pipe {DC E1..E5},
// 8-word fetch packets with p-bit parallel dispatch, multicycle NOP
// stalls, branch/load/multiply delay slots, memory wait states and a
// one-line interrupt controller.
//
//go:embed c62x.lisa
var C62x string

// Simd16 is the LISA source of the SIMD DSP model: a 4-lane vector unit
// over a banked vector register file, per-lane 40-bit MAC accumulators,
// broadcast/reduction, and scalar control flow — covering the SIMD corner
// of the paper's target class (§3).
//
//go:embed simd16.lisa
var Simd16 string

// All lists the embedded models by name.
var All = map[string]string{
	"simple16": Simple16,
	"c62x":     C62x,
	"simd16":   Simd16,
}
