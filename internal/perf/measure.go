package perf

import (
	"fmt"
	"time"

	"golisa/internal/analyze"
	"golisa/internal/core"
	"golisa/internal/cover"
	"golisa/internal/sim"
	"golisa/internal/trace"
)

// MeasureOptions shapes a Measure run.
type MeasureOptions struct {
	// Runs is the number of timed wall-clock passes (default 5). The
	// counter pass is separate and always runs once.
	Runs int
	// MaxSteps bounds every pass (default 1,000,000 — the cli default).
	MaxSteps uint64
	// Cover disables the coverage tier when false is explicit; the zero
	// value of MeasureOptions measures coverage (NoCover=false).
	NoCover bool
	// Note is carried into the record verbatim.
	Note string
	// Time stamps the record (RFC3339); empty means "now". Tests pin it
	// to build byte-identical records.
	Time string
	// WallRunner, when non-nil, replaces the engine of the timed wall
	// passes: it must run the program to completion and return the step
	// count and the pure run-loop nanoseconds. The generated tier plugs
	// its specialized runner in here, so the wall numbers time the
	// generated code itself (build, exec and protocol costs excluded)
	// while the counter pass still runs the observer-bearing classic
	// engine. Step counts must match the counter pass, as always.
	WallRunner func(maxSteps uint64) (steps uint64, ns int64, err error)
}

// DefaultRuns is the wall-clock pass count when MeasureOptions.Runs is 0.
const DefaultRuns = 5

// Measure produces a sealed RunRecord for one program on one machine:
//
//  1. A counter pass with the hazard analyzer and coverage collector
//     attached before Reset (so the reset operation is covered, the
//     lisa-cov convention) fills the deterministic tier.
//  2. N detached passes (observer nil — the production fast path) are
//     timed; ns/cycle per pass fills the wall tier as median-of-N. Each
//     pass must reproduce the counter pass's cycle count exactly, or
//     Measure fails: a nondeterministic run cannot be gated.
//
// progName is the program's ledger identity ("fir", "dot64"); the content
// hash distinguishes edits behind a stable name.
func Measure(mc *core.Machine, mode sim.Mode, progName, src string, opt MeasureOptions) (*RunRecord, error) {
	if opt.Runs <= 0 {
		opt.Runs = DefaultRuns
	}
	if opt.MaxSteps == 0 {
		opt.MaxSteps = 1_000_000
	}
	asmblr, err := mc.NewAssembler()
	if err != nil {
		return nil, err
	}
	prog, err := asmblr.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("perf: assemble %s: %w", progName, err)
	}
	pm, err := mc.ProgramMemory()
	if err != nil {
		return nil, err
	}

	stamp := opt.Time
	if stamp == "" {
		stamp = time.Now().UTC().Format(time.RFC3339)
	}
	rec := New(Env{
		Model:       mc.Model.Name,
		ModelHash:   HashString(mc.Source),
		Program:     progName,
		ProgramHash: HashProgram(prog.Origin, prog.Words),
		Engine:      mode.String(),
		Workers:     1,
		Note:        opt.Note,
		Time:        stamp,
	})

	// Counter pass: analyzer + collector attached before Reset.
	az := analyze.New()
	var col *cover.Collector
	obs := trace.Observer(az)
	s := sim.New(mc.Model, mode)
	if !opt.NoCover {
		col = cover.NewCollector(cover.NewMap(mc.Model))
		s.OnDecoded = col.MarkDecoded
		obs = trace.Multi{az, col}
	}
	s.SetObserver(obs)
	s.OnPrint = func(string) {} // target prints are measurement noise
	if err := s.Reset(); err != nil {
		return nil, err
	}
	if err := s.LoadProgram(pm, prog.Origin, prog.Words); err != nil {
		return nil, err
	}
	steps, err := s.Run(opt.MaxSteps)
	if err != nil {
		return nil, fmt.Errorf("perf: counter pass: %w", err)
	}
	rec.SetCounters(steps, s.Halted(), az.Report())
	if col != nil {
		rec.SetCoverage(col.Snapshot())
	}

	// Wall passes: fresh detached simulator each time; cycle counts must
	// match the counter pass or the measurement is meaningless.
	nsPerCycle := make([]float64, 0, opt.Runs)
	for i := 0; i < opt.Runs; i++ {
		if opt.WallRunner != nil {
			wsteps, ns, err := opt.WallRunner(opt.MaxSteps)
			if err != nil {
				return nil, fmt.Errorf("perf: wall pass %d: %w", i+1, err)
			}
			if wsteps != steps {
				return nil, fmt.Errorf("perf: nondeterministic run: wall pass %d took %d cycles, counter pass took %d",
					i+1, wsteps, steps)
			}
			if steps > 0 {
				nsPerCycle = append(nsPerCycle, float64(ns)/float64(steps))
			}
			continue
		}
		ws, err := mc.NewSimulator(mode)
		if err != nil {
			return nil, err
		}
		ws.OnPrint = func(string) {}
		if err := ws.LoadProgram(pm, prog.Origin, prog.Words); err != nil {
			return nil, err
		}
		start := time.Now()
		wsteps, err := ws.Run(opt.MaxSteps)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("perf: wall pass %d: %w", i+1, err)
		}
		if wsteps != steps {
			return nil, fmt.Errorf("perf: nondeterministic run: wall pass %d took %d cycles, counter pass took %d",
				i+1, wsteps, steps)
		}
		if steps > 0 {
			nsPerCycle = append(nsPerCycle, float64(elapsed.Nanoseconds())/float64(steps))
		}
	}
	rec.SetWall(nsPerCycle)
	return rec.Seal(), nil
}
