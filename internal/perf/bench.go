package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"golisa/internal/buildinfo"
)

// BenchRow is one key's latest measurement, in the BENCH_*.json idiom
// (runs arrays plus medians, so a reader can re-derive any statistic).
type BenchRow struct {
	Key              string    `json:"key"`
	RecordID         string    `json:"record_id"`
	Time             string    `json:"time,omitempty"`
	Cycles           uint64    `json:"cycles"`
	CPI              float64   `json:"cpi,omitempty"`
	NsPerCycleRuns   []float64 `json:"ns_per_cycle_runs,omitempty"`
	NsPerCycleMedian float64   `json:"ns_per_cycle_median,omitempty"`
	SpreadPct        float64   `json:"spread_pct,omitempty"`
}

// BenchEntry is a machine-written BENCH_*.json section: the latest ledger
// record per key, stamped with the measuring host.
type BenchEntry struct {
	Note string     `json:"note"`
	Host string     `json:"host"`
	Rows []BenchRow `json:"rows"`
}

// BenchEntry renders the latest record of every key matching filter.
func (l *Ledger) BenchEntry(note string, filter Key) (*BenchEntry, error) {
	e := &BenchEntry{Note: note, Host: buildinfo.Get().HostLine()}
	for _, k := range l.Keys() {
		if (filter.Model != "" && k.Model != filter.Model) ||
			(filter.Program != "" && k.Program != filter.Program) ||
			(filter.Engine != "" && k.Engine != filter.Engine) {
			continue
		}
		r := l.Latest(k)
		row := BenchRow{
			Key:      k.String(),
			RecordID: r.ID,
			Time:     r.Time,
			Cycles:   r.Counters.Cycles,
			CPI:      r.Counters.CPI,
		}
		if len(r.Wall.Runs) > 0 {
			row.NsPerCycleRuns = r.Wall.Runs
			row.NsPerCycleMedian = r.Wall.Median
			row.SpreadPct = 100 * r.Wall.Spread
		}
		e.Rows = append(e.Rows, row)
	}
	if len(e.Rows) == 0 {
		return nil, fmt.Errorf("perf: no ledger records match %s", filter)
	}
	return e, nil
}

// AddToBenchFile inserts the entry under name into a BENCH_*.json file by
// textual splice before the final closing brace, preserving the existing
// key order and formatting that a map round-trip would destroy. The file
// must exist, hold a JSON object, and not already contain the key.
func AddToBenchFile(path, name string, e *BenchEntry) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !json.Valid(data) {
		return fmt.Errorf("perf: %s is not valid JSON", path)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return fmt.Errorf("perf: %s is not a JSON object: %w", path, err)
	}
	if _, exists := top[name]; exists {
		return fmt.Errorf("perf: %s already has an entry %q", path, name)
	}
	entryJSON, err := json.MarshalIndent(e, "  ", "  ")
	if err != nil {
		return err
	}
	idx := bytes.LastIndexByte(data, '}')
	if idx < 0 {
		return fmt.Errorf("perf: %s has no closing brace", path)
	}
	head := strings.TrimRight(string(data[:idx]), " \t\n")
	if !strings.HasSuffix(head, "{") { // non-empty object: need a separating comma
		head += ","
	}
	out := fmt.Sprintf("%s\n  %q: %s\n}\n", head, name, entryJSON)
	if !json.Valid([]byte(out)) {
		return fmt.Errorf("perf: internal error: spliced %s would be invalid JSON", path)
	}
	return os.WriteFile(path, []byte(out), 0o644)
}
