package perf

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"golisa/internal/core"
	"golisa/internal/sim"
)

func loadSimple16(t *testing.T) *core.Machine {
	t.Helper()
	mc, err := core.LoadBuiltin("simple16")
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

func readKernel(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func measureDot(t *testing.T, mc *core.Machine, opt MeasureOptions) *RunRecord {
	t.Helper()
	rec, err := Measure(mc, sim.Compiled, "dot64", readKernel(t, "dot64.s"), opt)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestMeasureDeterministicTier(t *testing.T) {
	mc := loadSimple16(t)
	a := measureDot(t, mc, MeasureOptions{Runs: 2, Time: "2026-08-08T00:00:00Z"})
	b := measureDot(t, mc, MeasureOptions{Runs: 2, Time: "2026-08-08T00:00:00Z"})

	if a.Counters.Cycles == 0 || !a.Counters.Halted {
		t.Fatalf("counter pass did not run to halt: %+v", a.Counters)
	}
	if got, want := a.Counters.Cycles, uint64(586); got != want {
		t.Errorf("dot64 cycles = %d, want %d (the calibration kernel's known cost)", got, want)
	}
	// Deterministic tier must reproduce exactly between measurements.
	aj, _ := json.Marshal(a.Counters)
	bj, _ := json.Marshal(b.Counters)
	if !bytes.Equal(aj, bj) {
		t.Errorf("counters not reproducible:\n%s\n%s", aj, bj)
	}
	if len(a.Coverage) == 0 {
		t.Error("no coverage tier measured")
	}
	if len(a.Wall.Runs) != 2 || a.Wall.Median <= 0 {
		t.Errorf("wall tier = %+v, want 2 runs with positive median", a.Wall)
	}
	if a.ModelHash == "" || a.ProgramHash == "" || a.ModelHash == a.ProgramHash {
		t.Errorf("bad hashes: model %q program %q", a.ModelHash, a.ProgramHash)
	}
	if a.Host.GoVersion == "" {
		t.Error("host fingerprint not stamped")
	}
	if err := a.Verify(); err != nil {
		t.Errorf("sealed record fails Verify: %v", err)
	}
}

func TestSetWallStats(t *testing.T) {
	r := &RunRecord{}
	r.SetWall([]float64{30, 10, 20})
	if r.Wall.Median != 20 || r.Wall.Min != 10 || r.Wall.Max != 30 {
		t.Errorf("odd-N wall = %+v", r.Wall)
	}
	if r.Wall.Spread != 1 { // (30-10)/20
		t.Errorf("spread = %v, want 1", r.Wall.Spread)
	}
	r.SetWall([]float64{10, 20, 30, 40})
	if r.Wall.Median != 25 {
		t.Errorf("even-N median = %v, want 25", r.Wall.Median)
	}
	r.SetWall(nil)
	if r.Wall.Median != 0 || len(r.Wall.Runs) != 0 {
		t.Errorf("empty wall = %+v", r.Wall)
	}
}

func TestContentAddressing(t *testing.T) {
	r := New(Env{Model: "m", ModelHash: "mh", Program: "p", ProgramHash: "ph", Engine: "compiled", Time: "2026-08-08T00:00:00Z"})
	r.SetCounters(100, true, nil)
	r.Seal()
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	id := r.ID
	r.Counters.Cycles = 101 // tamper
	if err := r.Verify(); err == nil {
		t.Error("Verify accepted a tampered record")
	}
	r.Counters.Cycles = 100
	if r.ComputeID() != id {
		t.Error("ComputeID not stable after restore")
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.lperf")

	mk := func(cycles uint64, tm string) *RunRecord {
		r := New(Env{Model: "simple16", Program: "dot64", Engine: "compiled",
			ModelHash: "mh", ProgramHash: "ph", Time: tm})
		r.SetCounters(cycles, true, nil)
		return r.Seal()
	}
	r1, r2 := mk(586, "t1"), mk(586, "t2")
	if err := Append(path, r1, r2); err != nil {
		t.Fatal(err)
	}
	l, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Records) != 2 {
		t.Fatalf("loaded %d records, want 2", len(l.Records))
	}
	if got := l.Latest(Key{"simple16", "dot64", "compiled"}); got == nil || got.ID != r2.ID {
		t.Errorf("Latest = %v, want the second record", got)
	}
	// Wildcard queries.
	if n := len(l.Query(Key{Model: "simple16"})); n != 2 {
		t.Errorf("wildcard query = %d records, want 2", n)
	}
	if n := len(l.Query(Key{Model: "c62x"})); n != 0 {
		t.Errorf("mismatched query = %d records, want 0", n)
	}

	// AppendUnique dedupes against file content.
	n, err := AppendUnique(path, r1, mk(600, "t3"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("AppendUnique wrote %d records, want 1", n)
	}
	l2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(l2.Records) != 3 {
		t.Errorf("after dedupe append: %d records, want 3", len(l2.Records))
	}

	// Missing file is an empty ledger.
	empty, err := Load(filepath.Join(dir, "nope.lperf"))
	if err != nil || len(empty.Records) != 0 {
		t.Errorf("missing file: %v, %d records", err, len(empty.Records))
	}

	// Tampered line is rejected with its line number.
	data, _ := os.ReadFile(path)
	bad := bytes.Replace(data, []byte(`"cycles":586`), []byte(`"cycles":587`), 1)
	if _, err := Read(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("tampered ledger error = %v, want line-1 integrity failure", err)
	}

	// Merge counts only new records.
	other := NewLedger()
	other.Add(r1)
	other.Add(mk(700, "t4"))
	if got := l2.Merge(other); got != 1 {
		t.Errorf("Merge added %d, want 1", got)
	}
}

func TestGateTwoTiers(t *testing.T) {
	mk := func(cycles uint64, penalty map[string]uint64, wall []float64) *RunRecord {
		r := New(Env{Model: "simple16", Program: "fir", Engine: "compiled",
			ModelHash: "mh", ProgramHash: "ph", Time: "t"})
		r.SetCounters(cycles, true, nil)
		r.Counters.Penalty = penalty
		r.Coverage = []CoverageStat{{Domain: "ops", Covered: 10, Total: 12}}
		r.SetWall(wall)
		return r.Seal()
	}
	base := mk(1000, map[string]uint64{"data": 40}, []float64{100, 110, 105})

	// Identical deterministic tier, wall within bound: pass.
	same := mk(1000, map[string]uint64{"data": 40}, []float64{104, 108, 101})
	if g := Gate(base, same, GateOptions{}); !g.Pass {
		var sb strings.Builder
		g.WriteText(&sb)
		t.Errorf("identical runs failed the gate:\n%s", sb.String())
	}

	// 10% cycle regression: hard failure naming "cycles" with magnitude.
	slow := mk(1100, map[string]uint64{"data": 40}, []float64{105, 104, 106})
	g := Gate(base, slow, GateOptions{})
	if g.Pass {
		t.Fatal("cycle regression passed the gate")
	}
	var found bool
	for _, c := range g.Failures() {
		if c.Metric == "cycles" && c.Tier == TierDeterministic && strings.Contains(c.Detail, "+10.0%") {
			found = true
		}
	}
	if !found {
		t.Errorf("no cycles failure with magnitude in %+v", g.Failures())
	}
	var sb strings.Builder
	if err := g.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "FAIL cycles") || !strings.Contains(sb.String(), "regressed by 100") {
		t.Errorf("text verdict lacks per-metric explanation:\n%s", sb.String())
	}

	// Stall-mix drift at identical total cycles is still a hard failure.
	mix := mk(1000, map[string]uint64{"data": 30, "control": 10}, []float64{105})
	g = Gate(base, mix, GateOptions{})
	if g.Pass {
		t.Error("penalty-mix drift passed the gate")
	}
	names := map[string]bool{}
	for _, c := range g.Failures() {
		names[c.Metric] = true
	}
	if !names["penalty.data"] || !names["penalty.control"] {
		t.Errorf("penalty failures = %v, want both causes", names)
	}

	// Wall regression beyond bound: wall-tier failure only.
	// allowed = 105*(1+0.25) + (110-105) = 136.25
	hot := mk(1000, map[string]uint64{"data": 40}, []float64{140, 139, 141})
	g = Gate(base, hot, GateOptions{})
	if g.Pass {
		t.Error("wall regression passed the gate")
	}
	for _, c := range g.Failures() {
		if c.Tier != TierWall {
			t.Errorf("unexpected non-wall failure: %+v", c)
		}
	}
	// The same comparison passes with a looser threshold and under SkipWall.
	if g := Gate(base, hot, GateOptions{WallThreshold: 0.5}); !g.Pass {
		t.Error("wall check ignored the configured threshold")
	}
	if g := Gate(base, hot, GateOptions{SkipWall: true}); !g.Pass {
		t.Error("SkipWall still failed on wall time")
	}

	// The baseline's own spread grants headroom: base max 110 → +5 slack.
	warm := mk(1000, map[string]uint64{"data": 40}, []float64{135, 135, 135})
	if g := Gate(base, warm, GateOptions{}); !g.Pass {
		t.Error("median within threshold+spread bound still failed")
	}

	// Coverage drift is a hard failure.
	cov := mk(1000, map[string]uint64{"data": 40}, []float64{105})
	cov.Coverage[0].Covered = 9
	cov.Seal()
	g = Gate(base, cov, GateOptions{})
	if g.Pass {
		t.Error("coverage drift passed the gate")
	}

	// Identity mismatch fails but counters are still compared.
	other := mk(1100, map[string]uint64{"data": 40}, []float64{105})
	other.ProgramHash = "other"
	other.Seal()
	g = Gate(base, other, GateOptions{})
	if g.Pass {
		t.Error("program-hash mismatch passed")
	}
	names = map[string]bool{}
	for _, c := range g.Failures() {
		names[c.Metric] = true
	}
	if !names["program_hash"] || !names["cycles"] {
		t.Errorf("identity mismatch hid the counter drift: %v", names)
	}
}

func TestTrendAndSparkline(t *testing.T) {
	if got := Sparkline([]float64{1, 2, 3, 4, 5, 6, 7, 8}); got != "▁▂▃▄▅▆▇█" {
		t.Errorf("Sparkline ramp = %q", got)
	}
	if got := Sparkline([]float64{5, 5, 5}); got != "▅▅▅" {
		t.Errorf("Sparkline flat = %q", got)
	}
	if got := Sparkline(nil); got != "" {
		t.Errorf("Sparkline empty = %q", got)
	}

	l := NewLedger()
	for i, cyc := range []uint64{500, 520, 510, 560} {
		r := New(Env{Model: "simple16", Program: "dot64", Engine: "compiled",
			ModelHash: "mh", ProgramHash: "ph", Time: string(rune('a' + i))})
		r.SetCounters(cyc, true, nil)
		r.SetWall([]float64{float64(100 + 10*i)})
		l.Add(r.Seal())
	}
	rep := l.Trend(Key{})
	if len(rep.Keys) != 1 || rep.Keys[0].Runs != 4 {
		t.Fatalf("trend keys = %+v", rep.Keys)
	}
	var cycles *TrendSeries
	for i := range rep.Keys[0].Series {
		if rep.Keys[0].Series[i].Metric == "cycles" {
			cycles = &rep.Keys[0].Series[i]
		}
	}
	if cycles == nil || cycles.First != 500 || cycles.Last != 560 || cycles.Max != 560 {
		t.Fatalf("cycles series = %+v", cycles)
	}

	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"simple16/dot64/compiled", "cycles", "wall_ns_per_cycle", "+12.0%"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("trend text missing %q:\n%s", want, text.String())
		}
	}

	var htmlBuf bytes.Buffer
	if err := rep.WriteHTML(&htmlBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(htmlBuf.String(), "<polyline") || !strings.Contains(htmlBuf.String(), "simple16/dot64/compiled") {
		t.Error("trend HTML lacks sparkline polylines")
	}

	var jsonBuf bytes.Buffer
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back TrendReport
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatalf("trend JSON does not round-trip: %v", err)
	}

	// Filter: no matches is a report with no keys, and text says so.
	none := l.Trend(Key{Model: "c62x"})
	if len(none.Keys) != 0 {
		t.Errorf("filtered trend = %+v", none.Keys)
	}
}

func TestBenchEntrySplice(t *testing.T) {
	l := NewLedger()
	r := New(Env{Model: "simple16", Program: "dot64", Engine: "compiled",
		ModelHash: "mh", ProgramHash: "ph", Time: "2026-08-08T00:00:00Z"})
	r.SetCounters(586, true, nil)
	r.SetWall([]float64{2500, 2600, 2550})
	l.Add(r.Seal())

	e, err := l.BenchEntry("machine-written by lisa-perf bench-entry", Key{})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Rows) != 1 || e.Rows[0].Cycles != 586 || e.Rows[0].NsPerCycleMedian != 2550 {
		t.Fatalf("bench entry rows = %+v", e.Rows)
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	seed := "{\n  \"date\": \"2026-08-06\",\n  \"results\": {\"old\": 1}\n}\n"
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AddToBenchFile(path, "pr8_perf_observatory", e); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if !json.Valid(data) {
		t.Fatalf("spliced file invalid JSON:\n%s", data)
	}
	// Existing keys and their order survive the splice.
	if !strings.Contains(string(data), `"date": "2026-08-06"`) {
		t.Errorf("splice destroyed existing content:\n%s", data)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatal(err)
	}
	if _, ok := top["pr8_perf_observatory"]; !ok {
		t.Errorf("entry key missing after splice:\n%s", data)
	}
	// Re-adding the same key is refused.
	if err := AddToBenchFile(path, "pr8_perf_observatory", e); err == nil {
		t.Error("duplicate bench key accepted")
	}
	// No matching records is an error, not an empty entry.
	if _, err := l.BenchEntry("x", Key{Model: "c62x"}); err == nil {
		t.Error("BenchEntry with no matches succeeded")
	}
}

func TestMeasureGateEndToEnd(t *testing.T) {
	// The acceptance criterion in miniature: measure the same kernel
	// twice → gate passes; measure the de-optimized variant under the
	// same name → gate fails naming cycles.
	mc := loadSimple16(t)
	fast := measureDot(t, mc, MeasureOptions{Runs: 1})
	again := measureDot(t, mc, MeasureOptions{Runs: 1})
	// Wall noise on loaded CI hosts can exceed any sane bound for runs
	// this short; the determinism claim is the deterministic tier.
	if g := Gate(fast, again, GateOptions{SkipWall: true}); !g.Pass {
		var sb strings.Builder
		g.WriteText(&sb)
		t.Fatalf("same kernel measured twice fails the gate:\n%s", sb.String())
	}

	slow, err := Measure(mc, sim.Compiled, "dot64", readKernel(t, "fir_slow.s"), MeasureOptions{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := Gate(fast, slow, GateOptions{SkipWall: true})
	if g.Pass {
		t.Fatal("de-optimized variant passed the gate")
	}
	names := map[string]bool{}
	for _, c := range g.Failures() {
		names[c.Metric] = true
	}
	if !names["cycles"] || !names["program_hash"] {
		t.Errorf("gate failures = %v, want cycles and program_hash", names)
	}
}

func TestRecordWriters(t *testing.T) {
	mc := loadSimple16(t)
	rec := measureDot(t, mc, MeasureOptions{Runs: 1, Note: "writer test"})
	var text bytes.Buffer
	if err := rec.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"simple16/dot64/compiled", "cycles 586", "coverage[", "ns/cycle", "writer test"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("record text missing %q:\n%s", want, text.String())
		}
	}
	var js bytes.Buffer
	if err := rec.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back RunRecord
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Verify(); err != nil {
		t.Errorf("JSON round-trip breaks content address: %v", err)
	}
}

// TestBaselineMissing pins the gate's no-baseline failure mode: an empty
// ledger (fresh, or loaded from a file that does not exist) must name the
// missing (model, program, engine) triple in an error, never hand the
// caller a nil record to dereference or a zero-value baseline to diff
// against.
func TestBaselineMissing(t *testing.T) {
	k := Key{Model: "simple16", Program: "fir", Engine: "generated"}
	for _, tc := range []struct {
		name   string
		ledger func(t *testing.T) *Ledger
	}{
		{"fresh empty ledger", func(t *testing.T) *Ledger { return NewLedger() }},
		{"missing ledger file", func(t *testing.T) *Ledger {
			l, err := Load(filepath.Join(t.TempDir(), "nope.lperf"))
			if err != nil {
				t.Fatal(err)
			}
			return l
		}},
		{"ledger with only other keys", func(t *testing.T) *Ledger {
			l := NewLedger()
			r := New(Env{Model: "simple16", Program: "fir", Engine: "prebound",
				ModelHash: "mh", ProgramHash: "ph", Time: "t1"})
			r.SetCounters(10, true, nil)
			l.Add(r.Seal())
			return l
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec, err := tc.ledger(t).Baseline(k)
			if err == nil {
				t.Fatalf("Baseline = %+v, want error", rec)
			}
			if rec != nil {
				t.Errorf("Baseline returned non-nil record %v with error", rec.ID)
			}
			want := "no baseline for (simple16, fir, generated)"
			if !strings.Contains(err.Error(), want) {
				t.Errorf("Baseline error = %q, want it to contain %q", err, want)
			}
		})
	}
}

// TestBaselineHit is the positive twin: with history present, Baseline
// agrees with Latest.
func TestBaselineHit(t *testing.T) {
	l := NewLedger()
	mk := func(cycles uint64, tm string) *RunRecord {
		r := New(Env{Model: "simple16", Program: "fir", Engine: "generated",
			ModelHash: "mh", ProgramHash: "ph", Time: tm})
		r.SetCounters(cycles, true, nil)
		return r.Seal()
	}
	l.Add(mk(100, "t1"))
	newest := mk(90, "t2")
	l.Add(newest)
	got, err := l.Baseline(Key{"simple16", "fir", "generated"})
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != newest.ID {
		t.Errorf("Baseline = %.12s, want newest %.12s", got.ID, newest.ID)
	}
}
