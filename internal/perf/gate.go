package perf

import (
	"fmt"
	"io"
	"sort"
)

// Tier classifies a gate check: deterministic checks compare exactly,
// wall checks compare under the noise-aware bound.
type Tier string

const (
	TierDeterministic Tier = "deterministic"
	TierWall          Tier = "wall"
)

// Check is one gate comparison with its verdict and explanation.
type Check struct {
	Metric string `json:"metric"`
	Tier   Tier   `json:"tier"`
	Base   string `json:"base"`
	Cur    string `json:"cur"`
	OK     bool   `json:"ok"`
	// Detail explains a failure (or a notable pass, e.g. the wall bound
	// used); empty for uninteresting passes.
	Detail string `json:"detail,omitempty"`
}

// GateResult is the verdict of comparing a candidate run against a
// baseline.
type GateResult struct {
	Key    Key     `json:"key"`
	BaseID string  `json:"base_id"`
	CurID  string  `json:"cur_id"`
	Pass   bool    `json:"pass"`
	Checks []Check `json:"checks"`
}

// GateOptions tunes the wall-time tier.
type GateOptions struct {
	// WallThreshold is the allowed fractional median slowdown on top of
	// the baseline's own measured spread (default 0.25 = 25%). The
	// deterministic tier has no knob: counters must match exactly.
	WallThreshold float64
	// SkipWall disables the wall-time check entirely — for
	// cross-machine comparisons where only the deterministic tier is
	// meaningful.
	SkipWall bool
}

// DefaultWallThreshold is the wall-time slack when GateOptions leaves
// WallThreshold at 0.
const DefaultWallThreshold = 0.25

// Gate compares cur against base with two tiers of strictness:
//
//   - Deterministic counters (model/program identity, cycles, dispatches,
//     issue/idle cycles, CPI, the per-cause penalty mix, halt status,
//     coverage) must match byte for byte. Simulation is deterministic;
//     any drift here is a real behavior change, never noise.
//   - Wall time is noisy by nature, so the candidate's median ns/cycle is
//     allowed up to base.Median·(1+threshold) plus the baseline's own
//     upward spread (base.Max − base.Median). A baseline that wobbled 10%
//     grants 10% more headroom — the noise model travels in the record.
//
// Identity mismatches (model hash, program hash, engine) fail the gate
// but the counter checks still run, so the explanation shows what
// actually moved.
func Gate(base, cur *RunRecord, opt GateOptions) *GateResult {
	if opt.WallThreshold == 0 {
		opt.WallThreshold = DefaultWallThreshold
	}
	res := &GateResult{Key: cur.Key(), BaseID: base.ID, CurID: cur.ID, Pass: true}
	add := func(c Check) {
		if !c.OK {
			res.Pass = false
		}
		res.Checks = append(res.Checks, c)
	}
	exact := func(metric, b, c, why string) {
		ck := Check{Metric: metric, Tier: TierDeterministic, Base: b, Cur: c, OK: b == c}
		if !ck.OK {
			ck.Detail = why
		}
		add(ck)
	}

	exact("model_hash", base.ModelHash, cur.ModelHash, "model source changed — histories are not comparable")
	exact("program_hash", base.ProgramHash, cur.ProgramHash, "assembled program changed — histories are not comparable")
	exact("engine", base.Engine, cur.Engine, "simulation engine differs")

	bc, cc := base.Counters, cur.Counters
	exactU := func(metric string, b, c uint64) {
		exact(metric, fmt.Sprint(b), fmt.Sprint(c), deltaDetail(b, c))
	}
	exactU("cycles", bc.Cycles, cc.Cycles)
	exactU("dispatches", bc.Dispatches, cc.Dispatches)
	exactU("issue_cycles", bc.IssueCycles, cc.IssueCycles)
	exactU("idle_cycles", bc.IdleCycles, cc.IdleCycles)
	exact("cpi", fmt.Sprintf("%.6f", bc.CPI), fmt.Sprintf("%.6f", cc.CPI), "cycles-per-instruction drifted")
	exact("halted", fmt.Sprint(bc.Halted), fmt.Sprint(cc.Halted), "halt status differs")

	// Penalty mix: union of causes, absent = 0, each exact.
	for _, cause := range unionCauses(bc.Penalty, cc.Penalty) {
		exactU("penalty."+cause, bc.Penalty[cause], cc.Penalty[cause])
	}

	// Coverage: each domain's covered/total exact. A model-coverage shift
	// means the run exercised different parts of the description.
	baseCov := map[string]CoverageStat{}
	for _, cs := range base.Coverage {
		baseCov[cs.Domain] = cs
	}
	for _, cs := range cur.Coverage {
		b, ok := baseCov[cs.Domain]
		delete(baseCov, cs.Domain)
		if !ok {
			continue // domain only measured on one side: skip, not a regression
		}
		exact("coverage."+cs.Domain,
			fmt.Sprintf("%d/%d", b.Covered, b.Total),
			fmt.Sprintf("%d/%d", cs.Covered, cs.Total),
			"run exercises different parts of the model")
	}

	if !opt.SkipWall && len(base.Wall.Runs) > 0 && len(cur.Wall.Runs) > 0 {
		allowed := base.Wall.Median*(1+opt.WallThreshold) + (base.Wall.Max - base.Wall.Median)
		ck := Check{
			Metric: "wall_ns_per_cycle",
			Tier:   TierWall,
			Base:   fmt.Sprintf("%.1f", base.Wall.Median),
			Cur:    fmt.Sprintf("%.1f", cur.Wall.Median),
			OK:     cur.Wall.Median <= allowed,
		}
		ck.Detail = fmt.Sprintf("bound %.1f ns/cycle (median %.1f × %.0f%% threshold + %.1f baseline spread)",
			allowed, base.Wall.Median, 100*opt.WallThreshold, base.Wall.Max-base.Wall.Median)
		add(ck)
	}
	return res
}

// deltaDetail phrases a counter drift with its direction and magnitude.
func deltaDetail(b, c uint64) string {
	switch {
	case c > b:
		return fmt.Sprintf("regressed by %d (+%.1f%%)", c-b, pct(c-b, b))
	case b > c:
		return fmt.Sprintf("improved by %d (-%.1f%%) — re-baseline if intentional", b-c, pct(b-c, b))
	}
	return ""
}

func pct(delta, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(delta) / float64(base)
}

// unionCauses returns the sorted union of two penalty maps' keys.
func unionCauses(a, b map[string]uint64) []string {
	m := map[string]bool{}
	for k := range a {
		m[k] = true
	}
	for k := range b {
		m[k] = true
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Failures returns only the failed checks.
func (g *GateResult) Failures() []Check {
	var out []Check
	for _, c := range g.Checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// WriteText writes the per-metric verdict table, failures first.
func (g *GateResult) WriteText(w io.Writer) error {
	ew := &errWriter{w: w}
	verdict := "PASS"
	if !g.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(ew, "gate %s: %s (base %.12s, cur %.12s)\n", g.Key, verdict, g.BaseID, g.CurID)
	emit := func(wantOK bool) {
		for _, c := range g.Checks {
			if c.OK != wantOK {
				continue
			}
			mark := "ok  "
			if !c.OK {
				mark = "FAIL"
			}
			fmt.Fprintf(ew, "  %s %-22s %-10s base=%s cur=%s", mark, c.Metric, "["+string(c.Tier)+"]", c.Base, c.Cur)
			if c.Detail != "" && (!c.OK || c.Tier == TierWall) {
				fmt.Fprintf(ew, "  (%s)", c.Detail)
			}
			fmt.Fprintln(ew)
		}
	}
	emit(false)
	emit(true)
	return ew.err
}
