package perf

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"strings"
)

// TrendSeries is one metric's history across a key's ledger records,
// oldest first.
type TrendSeries struct {
	Metric string    `json:"metric"`
	Values []float64 `json:"values"`
	First  float64   `json:"first"`
	Last   float64   `json:"last"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// TrendKey is one (model, program, engine) triple's full history.
type TrendKey struct {
	Key     Key           `json:"key"`
	Runs    int           `json:"runs"`
	Times   []string      `json:"times,omitempty"`
	Series  []TrendSeries `json:"series"`
	LastID  string        `json:"last_id"`
	LastRun string        `json:"last_run,omitempty"`
}

// TrendReport summarizes every key's metric history in a ledger.
type TrendReport struct {
	Keys []TrendKey `json:"keys"`
}

// Trend builds the report for every key matching filter (zero Key = all).
func (l *Ledger) Trend(filter Key) *TrendReport {
	rep := &TrendReport{}
	for _, k := range l.Keys() {
		if (filter.Model != "" && k.Model != filter.Model) ||
			(filter.Program != "" && k.Program != filter.Program) ||
			(filter.Engine != "" && k.Engine != filter.Engine) {
			continue
		}
		recs := l.Query(k)
		tk := TrendKey{Key: k, Runs: len(recs), LastID: recs[len(recs)-1].ID, LastRun: recs[len(recs)-1].Time}
		for _, r := range recs {
			tk.Times = append(tk.Times, r.Time)
		}
		pick := func(metric string, get func(*RunRecord) (float64, bool)) {
			s := TrendSeries{Metric: metric}
			for _, r := range recs {
				if v, ok := get(r); ok {
					s.Values = append(s.Values, v)
				}
			}
			if len(s.Values) == 0 {
				return
			}
			s.First, s.Last = s.Values[0], s.Values[len(s.Values)-1]
			s.Min, s.Max = s.Values[0], s.Values[0]
			for _, v := range s.Values {
				if v < s.Min {
					s.Min = v
				}
				if v > s.Max {
					s.Max = v
				}
			}
			tk.Series = append(tk.Series, s)
		}
		pick("cycles", func(r *RunRecord) (float64, bool) { return float64(r.Counters.Cycles), true })
		pick("cpi", func(r *RunRecord) (float64, bool) { return r.Counters.CPI, r.Counters.CPI != 0 })
		pick("wall_ns_per_cycle", func(r *RunRecord) (float64, bool) { return r.Wall.Median, len(r.Wall.Runs) > 0 })
		pick("penalty_cycles", func(r *RunRecord) (float64, bool) {
			var sum uint64
			for _, v := range r.Counters.Penalty {
				sum += v
			}
			return float64(sum), true
		})
		pick("jobs_per_sec", func(r *RunRecord) (float64, bool) {
			if r.Batch == nil {
				return 0, false
			}
			return r.Batch.JobsPerSec, true
		})
		rep.Keys = append(rep.Keys, tk)
	}
	return rep
}

// sparkRunes are the eight sparkline levels, low to high.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a unicode sparkline scaled to their range.
// A flat series renders as all-mid; empty renders empty.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// WriteText writes the trend report with one sparkline row per metric.
func (t *TrendReport) WriteText(w io.Writer) error {
	ew := &errWriter{w: w}
	if len(t.Keys) == 0 {
		fmt.Fprintln(ew, "perf trend: ledger has no matching records")
		return ew.err
	}
	for _, tk := range t.Keys {
		fmt.Fprintf(ew, "%s  (%d runs", tk.Key, tk.Runs)
		if tk.LastRun != "" {
			fmt.Fprintf(ew, ", last %s", tk.LastRun)
		}
		fmt.Fprintln(ew, ")")
		for _, s := range tk.Series {
			delta := ""
			if s.First != 0 && s.Last != s.First {
				delta = fmt.Sprintf("  (%+.1f%%)", 100*(s.Last-s.First)/s.First)
			}
			fmt.Fprintf(ew, "  %-18s %s  %s -> %s%s\n",
				s.Metric, Sparkline(s.Values), trimFloat(s.First), trimFloat(s.Last), delta)
		}
	}
	return ew.err
}

// WriteJSON writes the trend report as indented JSON.
func (t *TrendReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// trimFloat renders integral values without a fraction.
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// trendHTML is the self-contained trend page: one inline-SVG sparkline
// per metric, same visual family as the analyzer and coverage reports.
var trendHTML = template.Must(template.New("trend").Funcs(template.FuncMap{
	"points": svgPoints,
	"trim":   trimFloat,
}).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>perf trend</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin: 1.5rem 0 .3rem; font-family: monospace; }
table { border-collapse: collapse; }
td, th { padding: .25rem .75rem; text-align: left; border-bottom: 1px solid #eee; }
svg { vertical-align: middle; }
polyline { fill: none; stroke: #2a7ae2; stroke-width: 1.5; }
.delta-up { color: #b00; } .delta-down { color: #080; }
</style></head><body>
<h1>perf trend</h1>
{{range .Keys}}<h2>{{.Key.Model}}/{{.Key.Program}}/{{.Key.Engine}} <small>({{.Runs}} runs)</small></h2>
<table><tr><th>metric</th><th>history</th><th>first</th><th>last</th><th>range</th></tr>
{{range .Series}}<tr><td>{{.Metric}}</td>
<td><svg width="160" height="28" viewBox="0 0 160 28"><polyline points="{{points .Values}}"/></svg></td>
<td>{{trim .First}}</td><td>{{trim .Last}}</td><td>{{trim .Min}} – {{trim .Max}}</td></tr>
{{end}}</table>
{{end}}</body></html>
`))

// svgPoints maps a series onto a 160×28 viewBox polyline.
func svgPoints(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	const w, h, pad = 160.0, 28.0, 3.0
	var sb strings.Builder
	for i, v := range values {
		x := pad
		if len(values) > 1 {
			x = pad + (w-2*pad)*float64(i)/float64(len(values)-1)
		}
		y := h / 2
		if hi > lo {
			y = h - pad - (h-2*pad)*(v-lo)/(hi-lo)
		}
		fmt.Fprintf(&sb, "%.1f,%.1f ", x, y)
	}
	return strings.TrimSpace(sb.String())
}

// WriteHTML writes the self-contained HTML trend page.
func (t *TrendReport) WriteHTML(w io.Writer) error {
	return trendHTML.Execute(w, t)
}
