package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Ledger is an in-memory view over a .lperf file: an append-only JSONL
// stream of sealed RunRecords, one compact JSON object per line. Records
// are content-addressed, so the file is a set — re-appending an existing
// record is a no-op under AppendUnique, and merging two ledgers never
// duplicates a measurement.
type Ledger struct {
	Records []*RunRecord
	ids     map[string]bool
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{ids: map[string]bool{}}
}

// Read parses a .lperf stream. Every record's content address is
// verified; blank lines are tolerated, anything else is an error with its
// line number.
func Read(r io.Reader) (*Ledger, error) {
	l := NewLedger()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		rec := &RunRecord{}
		if err := json.Unmarshal(text, rec); err != nil {
			return nil, fmt.Errorf("perf: ledger line %d: %w", line, err)
		}
		if err := rec.Verify(); err != nil {
			return nil, fmt.Errorf("perf: ledger line %d: %w", line, err)
		}
		l.Add(rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perf: read ledger: %w", err)
	}
	return l, nil
}

// Load reads a .lperf file. A missing file is an empty ledger, so tools
// can append to a path that does not exist yet.
func Load(path string) (*Ledger, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return NewLedger(), nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	l, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// Add inserts a record unless its ID is already present. It reports
// whether the record was new.
func (l *Ledger) Add(rec *RunRecord) bool {
	if l.ids == nil {
		l.ids = map[string]bool{}
	}
	if l.ids[rec.ID] {
		return false
	}
	l.ids[rec.ID] = true
	l.Records = append(l.Records, rec)
	return true
}

// Merge adds every record of other, returning how many were new.
func (l *Ledger) Merge(other *Ledger) int {
	added := 0
	for _, rec := range other.Records {
		if l.Add(rec) {
			added++
		}
	}
	return added
}

// Query returns the records matching a key in file order (oldest first).
// Empty key fields are wildcards, so Query(Key{Model: "simple16"})
// returns every simple16 record.
func (l *Ledger) Query(k Key) []*RunRecord {
	var out []*RunRecord
	for _, rec := range l.Records {
		if (k.Model == "" || rec.Model == k.Model) &&
			(k.Program == "" || rec.Program == k.Program) &&
			(k.Engine == "" || rec.Engine == k.Engine) {
			out = append(out, rec)
		}
	}
	return out
}

// Latest returns the newest record for an exact key (nil when the key has
// no history). "Newest" is file order — the append-only discipline makes
// position the timeline.
func (l *Ledger) Latest(k Key) *RunRecord {
	recs := l.Query(k)
	if len(recs) == 0 {
		return nil
	}
	return recs[len(recs)-1]
}

// Baseline returns the newest record for an exact key, or an error
// naming the missing (model, program, engine) triple. It is the gate's
// guard: comparing against a zero-value baseline when the ledger is
// empty or missing would report nonsense deltas, so the absence must be
// an explicit failure, never a silent pass.
func (l *Ledger) Baseline(k Key) (*RunRecord, error) {
	if rec := l.Latest(k); rec != nil {
		return rec, nil
	}
	return nil, fmt.Errorf("no baseline for (%s, %s, %s)", k.Model, k.Program, k.Engine)
}

// Keys returns every distinct (model, program, engine) triple present, in
// stable sorted order.
func (l *Ledger) Keys() []Key {
	seen := map[Key]bool{}
	var keys []Key
	for _, rec := range l.Records {
		k := rec.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

// Write emits the whole ledger as JSONL.
func (l *Ledger) Write(w io.Writer) error {
	for _, rec := range l.Records {
		if err := writeLine(w, rec); err != nil {
			return err
		}
	}
	return nil
}

// Append appends sealed records to a .lperf file (created if absent),
// using O_APPEND so concurrent appenders interleave whole lines.
func Append(path string, recs ...*RunRecord) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if rec.ID == "" {
			rec.Seal()
		}
		if err := writeLine(f, rec); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// AppendUnique appends only the records the file does not already hold,
// returning how many were written.
func AppendUnique(path string, recs ...*RunRecord) (int, error) {
	existing, err := Load(path)
	if err != nil {
		return 0, err
	}
	var fresh []*RunRecord
	for _, rec := range recs {
		if rec.ID == "" {
			rec.Seal()
		}
		if existing.Add(rec) {
			fresh = append(fresh, rec)
		}
	}
	if len(fresh) == 0 {
		return 0, nil
	}
	return len(fresh), Append(path, fresh...)
}

// writeLine writes one record as a compact JSON line.
func writeLine(w io.Writer, rec *RunRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
