// Package perf implements the performance observatory of the golisa
// simulators: canonical run records, an append-only content-addressed
// ledger (.lperf), a two-tier regression gate and trend reports.
//
// The paper's headline claim is quantitative — compiled simulation buys
// orders of magnitude over interpretive — so performance is a correctness
// property here, measured like one. Every measurement is a RunRecord with
// two tiers of data:
//
//   - Deterministic counters (cycles, CPI, per-cause stall breakdown from
//     internal/analyze, model coverage from internal/cover). Two runs of
//     the same model+program+engine must reproduce these exactly; the gate
//     compares them byte for byte and any drift is a hard failure.
//   - Calibrated wall clock (ns per simulated cycle, median of N timed
//     passes with the measured spread). Inherently noisy; the gate
//     compares medians under a noise-aware bound derived from the
//     baseline's own spread plus a configurable threshold.
//
// Records are content-addressed (ID = SHA-256 of the canonical JSON) and
// stamped with the build/host fingerprint (internal/buildinfo), so ledger
// entries stay attributable and re-appends deduplicate.
package perf

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"golisa/internal/analyze"
	"golisa/internal/buildinfo"
	"golisa/internal/cover"
)

// Schema is the RunRecord wire version, bumped on incompatible shape
// changes so old ledgers stay readable knowingly.
const Schema = 1

// Counters is the deterministic tier of a record: identical runs must
// reproduce every field exactly.
type Counters struct {
	// Cycles is the control-step count of the run.
	Cycles uint64 `json:"cycles"`
	// Dispatches, IssueCycles, IdleCycles and CPI come from the hazard
	// analyzer's cycle model (issue + Σ penalty + other + idle == cycles).
	Dispatches  uint64  `json:"dispatches,omitempty"`
	IssueCycles uint64  `json:"issue_cycles,omitempty"`
	IdleCycles  uint64  `json:"idle_cycles,omitempty"`
	CPI         float64 `json:"cpi,omitempty"`
	// Penalty is the per-cause stall breakdown in penalty cycles
	// (trace.Cause names, plus "other" for unattributed penalty).
	Penalty map[string]uint64 `json:"penalty,omitempty"`
	Halted  bool              `json:"halted"`
}

// CoverageStat is one model-coverage domain of the measured run.
type CoverageStat struct {
	Domain  string `json:"domain"`
	Covered int    `json:"covered"`
	Total   int    `json:"total"`
}

// Pct returns the domain's coverage percentage (100 for empty domains).
func (c CoverageStat) Pct() float64 {
	if c.Total == 0 {
		return 100
	}
	return 100 * float64(c.Covered) / float64(c.Total)
}

// Wall is the calibrated wall-clock tier: nanoseconds per simulated cycle
// over N timed passes. Runs preserves the per-pass values so a later
// reader can re-derive any statistic; Spread is (max-min)/median, the
// run-to-run noise the gate folds into its bound.
type Wall struct {
	Runs   []float64 `json:"ns_per_cycle_runs,omitempty"`
	Median float64   `json:"ns_per_cycle,omitempty"`
	Min    float64   `json:"min_ns_per_cycle,omitempty"`
	Max    float64   `json:"max_ns_per_cycle,omitempty"`
	Spread float64   `json:"spread,omitempty"`
}

// BatchStats carries the fleet's latency summary when the record measured
// a whole batch instead of a single run.
type BatchStats struct {
	Jobs        int     `json:"jobs"`
	Workers     int     `json:"workers"`
	P50Ns       uint64  `json:"p50_ns"`
	P90Ns       uint64  `json:"p90_ns"`
	P99Ns       uint64  `json:"p99_ns"`
	MaxNs       uint64  `json:"max_ns"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	Utilization float64 `json:"worker_utilization"`
}

// Env identifies what a record measured: the model and program (name plus
// content hash, so renames and edits are distinguishable), the simulation
// engine, and how the measurement ran.
type Env struct {
	Model       string
	ModelHash   string
	Program     string
	ProgramHash string
	Engine      string
	Workers     int
	Note        string
	// Time is the measurement timestamp (RFC3339). Callers stamp it so
	// tests can build byte-identical records.
	Time string
	// TraceID/SpanID tie the record to the trace that produced it
	// (otrace identity: 32/16 hex chars). Optional; records measured
	// outside a traced run leave them empty, which keeps their content
	// address identical to pre-trace records.
	TraceID string
	SpanID  string
}

// Key is the ledger's query key: records of one (model, program, engine)
// triple form one comparable history.
type Key struct {
	Model   string `json:"model"`
	Program string `json:"program"`
	Engine  string `json:"engine"`
}

func (k Key) String() string { return k.Model + "/" + k.Program + "/" + k.Engine }

// RunRecord is one canonical performance measurement.
type RunRecord struct {
	// ID is the content address: SHA-256 over the record's canonical JSON
	// with ID itself blanked. Seal computes it; the ledger verifies it.
	ID     string `json:"id"`
	Schema int    `json:"schema"`
	Time   string `json:"time,omitempty"`

	Model       string `json:"model"`
	ModelHash   string `json:"model_hash"`
	Program     string `json:"program"`
	ProgramHash string `json:"program_hash"`
	// Engine is the simulation technique measured (sim.Mode string;
	// fleet records append "/batch" since batch numbers are not
	// comparable to single-run calibration).
	Engine  string `json:"engine"`
	Workers int    `json:"workers,omitempty"`

	// TraceID/SpanID are the producing run's trace identity (empty for
	// untraced runs; omitted from the canonical JSON then, so old ledger
	// IDs stay valid).
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`

	Host buildinfo.Info `json:"host"`

	Counters Counters       `json:"counters"`
	Coverage []CoverageStat `json:"coverage,omitempty"`
	Wall     Wall           `json:"wall"`
	Batch    *BatchStats    `json:"batch,omitempty"`

	Note string `json:"note,omitempty"`
}

// New creates an unsealed record for env, stamped with the current
// process's build/host fingerprint.
func New(env Env) *RunRecord {
	return &RunRecord{
		Schema:      Schema,
		Time:        env.Time,
		Model:       env.Model,
		ModelHash:   env.ModelHash,
		Program:     env.Program,
		ProgramHash: env.ProgramHash,
		Engine:      env.Engine,
		Workers:     env.Workers,
		Note:        env.Note,
		TraceID:     env.TraceID,
		SpanID:      env.SpanID,
		Host:        buildinfo.Get(),
	}
}

// Key returns the record's ledger query key.
func (r *RunRecord) Key() Key { return Key{r.Model, r.Program, r.Engine} }

// SetCounters fills the deterministic tier from the hazard analyzer's
// report: dispatch/issue/idle cycles, CPI, and the per-cause penalty
// breakdown (every non-zero hazard bucket, "other" included; the "issue"
// and "idle" buckets are carried in their own fields).
func (r *RunRecord) SetCounters(steps uint64, halted bool, rep *analyze.Report) {
	c := Counters{Cycles: steps, Halted: halted}
	if rep != nil {
		c.Dispatches = rep.Dispatches
		c.IssueCycles = rep.IssueCycles
		c.IdleCycles = rep.IdleCycles
		c.CPI = rep.CPI
		for _, b := range rep.Breakdown {
			if b.Name == "issue" || b.Name == "idle" || b.Cycles == 0 {
				continue
			}
			if c.Penalty == nil {
				c.Penalty = map[string]uint64{}
			}
			c.Penalty[b.Name] = b.Cycles
		}
	}
	r.Counters = c
}

// SetCoverage fills the coverage tier from a model-coverage snapshot.
func (r *RunRecord) SetCoverage(snap *cover.Snapshot) {
	if snap == nil {
		return
	}
	r.Coverage = r.Coverage[:0]
	for _, d := range snap.Domains {
		r.Coverage = append(r.Coverage, CoverageStat{Domain: d.Name, Covered: d.Covered, Total: d.Total})
	}
}

// SetWall fills the wall-clock tier from per-pass ns/cycle measurements.
func (r *RunRecord) SetWall(nsPerCycle []float64) {
	w := Wall{Runs: append([]float64(nil), nsPerCycle...)}
	if len(w.Runs) > 0 {
		sorted := append([]float64(nil), w.Runs...)
		sort.Float64s(sorted)
		w.Min = sorted[0]
		w.Max = sorted[len(sorted)-1]
		mid := len(sorted) / 2
		if len(sorted)%2 == 1 {
			w.Median = sorted[mid]
		} else {
			w.Median = (sorted[mid-1] + sorted[mid]) / 2
		}
		if w.Median > 0 {
			w.Spread = (w.Max - w.Min) / w.Median
		}
	}
	r.Wall = w
}

// ComputeID returns the record's content address without modifying it.
func (r *RunRecord) ComputeID() string {
	c := *r
	c.ID = ""
	data, err := json.Marshal(&c)
	if err != nil {
		// Marshaling a plain struct of scalars/maps/slices cannot fail.
		panic(fmt.Sprintf("perf: marshal record: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}

// Seal stamps the record's content address and returns the record.
func (r *RunRecord) Seal() *RunRecord {
	r.ID = r.ComputeID()
	return r
}

// Verify recomputes the content address and errors on mismatch — the
// ledger's integrity check against hand-edited entries.
func (r *RunRecord) Verify() error {
	if r.ID == "" {
		return fmt.Errorf("perf: record %s has no id (not sealed)", r.Key())
	}
	if want := r.ComputeID(); r.ID != want {
		return fmt.Errorf("perf: record %s id %.12s does not match its content (%.12s) — ledger edited by hand?",
			r.Key(), r.ID, want)
	}
	return nil
}

// HashString returns the canonical short content hash perf uses for model
// sources and assembled programs (first 16 hex chars of SHA-256).
func HashString(s string) string {
	sum := sha256.Sum256([]byte(s))
	return fmt.Sprintf("%x", sum[:8])
}

// HashProgram hashes an assembled program image (origin plus instruction
// words), so formatting-only source edits do not change the identity.
func HashProgram(origin uint64, words []uint64) string {
	h := sha256.New()
	fmt.Fprintf(h, "origin:%d;", origin)
	for _, w := range words {
		fmt.Fprintf(h, "%x;", w)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// WriteJSON writes the record as indented JSON.
func (r *RunRecord) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText writes the human-readable record summary.
func (r *RunRecord) WriteText(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "perf record %s", r.Key())
	if r.ID != "" {
		fmt.Fprintf(ew, " [%.12s]", r.ID)
	}
	fmt.Fprintln(ew)
	fmt.Fprintf(ew, "  model %s (hash %s), program %s (hash %s)\n", r.Model, r.ModelHash, r.Program, r.ProgramHash)
	if r.Time != "" {
		fmt.Fprintf(ew, "  measured %s on %s\n", r.Time, r.Host.HostLine())
	} else {
		fmt.Fprintf(ew, "  host %s\n", r.Host.HostLine())
	}
	c := r.Counters
	fmt.Fprintf(ew, "  cycles %d, dispatches %d, issue %d, idle %d, CPI %.3f, halted=%v\n",
		c.Cycles, c.Dispatches, c.IssueCycles, c.IdleCycles, c.CPI, c.Halted)
	for _, cause := range sortedCauses(c.Penalty) {
		fmt.Fprintf(ew, "    penalty[%s] = %d cycles\n", cause, c.Penalty[cause])
	}
	for _, cs := range r.Coverage {
		fmt.Fprintf(ew, "  coverage[%s] = %d/%d (%.1f%%)\n", cs.Domain, cs.Covered, cs.Total, cs.Pct())
	}
	if len(r.Wall.Runs) > 0 {
		fmt.Fprintf(ew, "  wall %.1f ns/cycle (median of %d; min %.1f, max %.1f, spread %.1f%%)\n",
			r.Wall.Median, len(r.Wall.Runs), r.Wall.Min, r.Wall.Max, 100*r.Wall.Spread)
	}
	if b := r.Batch; b != nil {
		fmt.Fprintf(ew, "  batch %d jobs on %d workers: p50 %s p90 %s p99 %s max %s; %.1f jobs/sec, %.0f%% utilization\n",
			b.Jobs, b.Workers, time.Duration(b.P50Ns), time.Duration(b.P90Ns),
			time.Duration(b.P99Ns), time.Duration(b.MaxNs), b.JobsPerSec, 100*b.Utilization)
	}
	if r.TraceID != "" {
		fmt.Fprintf(ew, "  trace %s", r.TraceID)
		if r.SpanID != "" {
			fmt.Fprintf(ew, " span %s", r.SpanID)
		}
		fmt.Fprintln(ew)
	}
	if r.Note != "" {
		fmt.Fprintf(ew, "  note: %s\n", r.Note)
	}
	return ew.err
}

// sortedCauses returns a penalty map's keys in stable order.
func sortedCauses(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// errWriter latches the first write error so writers can check once.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}
