; fir_slow: a deliberately de-optimized variant of examples/fir/prog/fir.s
; (two injected NOP bubbles per inner-loop iteration, everything else
; identical). Recording it under the same ledger name as the real FIR
; injects a >10% cycle regression, which the CI perf-gate job asserts
; `lisa-perf gate` catches with a per-metric explanation.
start:  LDI B1, 1
        LDI A9, 0
        LDI A10, 32
        LDI A3, 200
outer:  CLRACC
        LDI A8, 8
        LDI A4, 0         ; &h[0]
        LDI A5, 100       ; &x[0]
        NOP
        ADD A5, A5, A9    ; &x[n]
inner:  LD  A6, A4, 0     ; h[k]   (1 load delay slot)
        LD  A7, A5, 0     ; x[n+k]
        NOP               ; injected bubble
        ADD A4, A4, B1
        MAC A6, A7
        NOP               ; injected bubble
        ADD A5, A5, B1
        SUB A8, A8, B1
        BNZ A8, inner
        NOP               ; branch delay slot 1
        NOP               ; branch delay slot 2
        SAT A6
        ST  A6, A3, 0     ; y[n]
        ADD A3, A3, B1
        ADD A9, A9, B1
        SUB A10, A10, B1
        BNZ A10, outer
        NOP
        NOP
        LD  A6, A3, 0
        NOP
        MPY A7, A6, B1
        AND A7, A7, A6
        OR  A7, A7, A6
        XOR A7, A7, A7
        B   end
        NOP               ; branch delay slot 1
        NOP               ; branch delay slot 2
        NOP               ; skipped by the branch
end:    HALT
