; dot64: 64-element dot product on simple16 — the repo's calibration
; kernel (the same source BenchmarkObserverOverhead runs).
        LDI B1, 1
        LDI A8, 64        ; count
        LDI A4, 0         ; &a
        LDI A5, 100       ; &b
        CLRACC
loop:   LD  A6, A4, 0
        LD  A7, A5, 0
        ADD A4, A4, B1
        MAC A6, A7
        ADD A5, A5, B1
        SUB A8, A8, B1
        BNZ A8, loop
        NOP
        NOP
        SAT A0
        ST  A0, B0, 200
        HALT
